#include "hermes/net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"

namespace hermes::net {

namespace {
constexpr std::uint32_t kPacketWire = 1500;
}

std::uint32_t TopologyConfig::ecn_bytes_for(double rate_bps) const {
  if (ecn_threshold_bytes != 0) return ecn_threshold_bytes;
  // 65 packets at 10G scaled linearly with rate, but never below 20 packets
  // (the DCTCP guideline for 1G; the paper's testbed uses 30KB at 1G).
  const double pkts = std::max(20.0, 65.0 * rate_bps / 10e9);
  return static_cast<std::uint32_t>(pkts * kPacketWire);
}

std::uint32_t TopologyConfig::queue_bytes_for(double rate_bps) const {
  if (queue_capacity_bytes != 0) return queue_capacity_bytes;
  return std::max<std::uint32_t>(6 * ecn_bytes_for(rate_bps), 150 * 1024);
}

PortConfig TopologyConfig::port_config(double rate_bps) const {
  PortConfig pc;
  pc.rate_bps = rate_bps;
  pc.prop_delay = link_delay;
  pc.ecn_threshold_bytes = ecn_bytes_for(rate_bps);
  pc.queue_capacity_bytes = queue_bytes_for(rate_bps);
  pc.ecn_enabled = ecn_enabled;
  return pc;
}

double Topology::link_rate(int leaf_id, int spine, int k) const {
  auto it = config_.fabric_overrides.find({leaf_id, spine, k});
  return it != config_.fabric_overrides.end() ? it->second : config_.fabric_rate_bps;
}

Topology::Topology(sim::Simulator& simulator, TopologyConfig config)
    : simulator_{simulator}, config_{config} {
  const int L = config_.num_leaves;
  const int S = config_.num_spines;
  const int H = config_.hosts_per_leaf;
  const int M = config_.links_per_pair;
  if (L < 1 || S < 1 || H < 1 || M < 1) throw std::invalid_argument("bad topology shape");

  // Fabric dimension members (the abstract interface's concrete shape).
  num_leaves_ = L;
  num_spines_ = S;
  hosts_per_leaf_ = H;
  host_rate_bps_ = config_.host_rate_bps;

  for (int i = 0; i < L * H; ++i) hosts_.push_back(std::make_unique<Host>(simulator_, arena_, i));
  for (int i = 0; i < L; ++i)
    leaves_.push_back(std::make_unique<Switch>(simulator_, arena_, i, "leaf" + std::to_string(i)));
  for (int i = 0; i < S; ++i)
    spines_.push_back(
        std::make_unique<Switch>(simulator_, arena_, i, "spine" + std::to_string(i)));

  // Host <-> leaf links. Leaf ports [0, H) go down to hosts.
  for (int l = 0; l < L; ++l) {
    for (int h = 0; h < H; ++h) {
      const int host_id = l * H + h;
      hosts_[host_id]->attach_uplink(config_.port_config(config_.host_rate_bps),
                                     leaves_[l].get(), h);
      const int p = leaves_[l]->add_port(config_.port_config(config_.host_rate_bps),
                                         hosts_[host_id].get(), 0);
      assert(p == h);
      (void)p;
    }
  }
  // Leaf <-> spine links. Leaf ports [H, H + S*M) go up; spine ports
  // [0, L*M) go down. Asymmetric overrides apply to both directions;
  // rate 0 means the link is cut (paths through it are excluded).
  for (int l = 0; l < L; ++l) {
    for (int s = 0; s < S; ++s) {
      for (int k = 0; k < M; ++k) {
        const double rate = link_rate(l, s, k);
        const double effective = rate > 0 ? rate : config_.fabric_rate_bps;
        const int up = leaves_[l]->add_port(config_.port_config(effective), spines_[s].get(),
                                            downlink_port_index(l, k));
        assert(up == uplink_port_index(s, k));
        leaves_[l]->port(up).is_fabric = true;
      }
    }
  }
  for (int s = 0; s < S; ++s) {
    for (int l = 0; l < L; ++l) {
      for (int k = 0; k < M; ++k) {
        const double rate = link_rate(l, s, k);
        const double effective = rate > 0 ? rate : config_.fabric_rate_bps;
        const int down = spines_[s]->add_port(config_.port_config(effective), leaves_[l].get(),
                                              uplink_port_index(s, k));
        assert(down == downlink_port_index(l, k));
        spines_[s]->port(down).is_fabric = true;
      }
    }
  }

  // Shared-memory buffering (optional): one Dynamic Threshold pool per
  // switch instead of static per-port carving.
  if (config_.shared_buffer_bytes > 0) {
    for (auto& sw : leaves_) sw->use_shared_buffer(config_.shared_buffer_bytes, config_.dt_alpha);
    for (auto& sw : spines_) sw->use_shared_buffer(config_.shared_buffer_bytes, config_.dt_alpha);
  }

  // Enumerate usable paths per ordered leaf pair.
  pair_paths_.resize(static_cast<std::size_t>(L) * L);
  for (int a = 0; a < L; ++a) {
    for (int b = 0; b < L; ++b) {
      if (a == b) continue;
      auto& list = pair_paths_[static_cast<std::size_t>(a) * L + b];
      for (int s = 0; s < S; ++s) {
        for (int k = 0; k < M; ++k) {
          const double up_rate = link_rate(a, s, k);
          const double down_rate = link_rate(b, s, k);
          if (up_rate <= 0 || down_rate <= 0) continue;  // cut link
          FabricPath p;
          p.id = static_cast<int>(all_paths_.size());
          p.src_leaf = a;
          p.dst_leaf = b;
          p.spine = s;
          p.link_idx = k;
          p.local_index = static_cast<int>(list.size());
          p.capacity_bps = std::min(up_rate, down_rate);
          all_paths_.push_back(p);
          list.push_back(p);
        }
      }
      if (list.empty()) throw std::invalid_argument("leaf pair disconnected by overrides");
    }
  }

  bisection_bps_ = 0;
  for (int l = 0; l < L; ++l)
    for (int s = 0; s < S; ++s)
      for (int k = 0; k < M; ++k) bisection_bps_ += std::max(0.0, link_rate(l, s, k));
}

const std::vector<FabricPath>& Topology::paths_between_leaves(int src_leaf, int dst_leaf) const {
  if (src_leaf == dst_leaf) return empty_;
  return pair_paths_[static_cast<std::size_t>(src_leaf) * config_.num_leaves + dst_leaf];
}

Route Topology::forward_route(int src_host, int dst_host, int path_id) const {
  Route r;
  const int src_leaf = leaf_of(src_host);
  const int dst_leaf = leaf_of(dst_host);
  if (src_leaf == dst_leaf) {
    r.push(static_cast<std::uint8_t>(local_index(dst_host)));
    return r;
  }
  const FabricPath& p = all_paths_.at(path_id);
  assert(p.src_leaf == src_leaf && p.dst_leaf == dst_leaf);
  r.push(static_cast<std::uint8_t>(uplink_port_index(p.spine, p.link_idx)));
  r.push(static_cast<std::uint8_t>(downlink_port_index(dst_leaf, p.link_idx)));
  r.push(static_cast<std::uint8_t>(local_index(dst_host)));
  return r;
}

Route Topology::reverse_route(int src_host, int dst_host, int path_id) const {
  Route r;
  const int src_leaf = leaf_of(src_host);
  const int dst_leaf = leaf_of(dst_host);
  if (src_leaf == dst_leaf) {
    r.push(static_cast<std::uint8_t>(local_index(src_host)));
    return r;
  }
  const FabricPath& p = all_paths_.at(path_id);
  r.push(static_cast<std::uint8_t>(uplink_port_index(p.spine, p.link_idx)));
  r.push(static_cast<std::uint8_t>(downlink_port_index(src_leaf, p.link_idx)));
  r.push(static_cast<std::uint8_t>(local_index(src_host)));
  return r;
}

Port& Topology::leaf_uplink(int leaf_id, int spine, int k) {
  return leaves_[leaf_id]->port(uplink_port_index(spine, k));
}

Port& Topology::spine_downlink(int spine, int leaf_id, int k) {
  return spines_[spine]->port(downlink_port_index(leaf_id, k));
}

void Topology::set_link_state(int leaf_id, int spine, bool up, int k) {
  leaf_uplink(leaf_id, spine, k).set_link_up(up);
  spine_downlink(spine, leaf_id, k).set_link_up(up);
}

void Topology::set_link_rate(int leaf_id, int spine, double rate_bps, int k) {
  leaf_uplink(leaf_id, spine, k).set_rate_bps(rate_bps);
  spine_downlink(spine, leaf_id, k).set_rate_bps(rate_bps);
}

void Topology::set_recorder(obs::FlightRecorder* rec) {
  for (auto& h : hosts_) h->nic().set_recorder(rec);
  for (auto& sw : leaves_)
    for (int i = 0; i < sw->num_ports(); ++i) sw->port(i).set_recorder(rec);
  for (auto& sw : spines_)
    for (int i = 0; i < sw->num_ports(); ++i) sw->port(i).set_recorder(rec);
}

void Topology::register_metrics(obs::MetricsRegistry& reg) {
  // Pull-model: each closure walks the live PortStats at snapshot time.
  // Topologies are a few hundred ports at most, so the walk is cheap and
  // happens off the packet hot path.
  const auto sum = [this](std::uint64_t (*pick)(const PortStats&)) {
    std::uint64_t total = 0;
    for (const auto& h : hosts_) total += pick(h->nic().stats());
    for (const auto& sw : leaves_)
      for (int i = 0; i < sw->num_ports(); ++i) total += pick(sw->port(i).stats());
    for (const auto& sw : spines_)
      for (int i = 0; i < sw->num_ports(); ++i) total += pick(sw->port(i).stats());
    return total;
  };
  reg.counter_fn("net.tx_packets",
                 [sum] { return sum([](const PortStats& s) { return s.tx_packets; }); });
  reg.counter_fn("net.tx_bytes",
                 [sum] { return sum([](const PortStats& s) { return s.tx_bytes; }); });
  reg.counter_fn("net.drops", [sum] { return sum([](const PortStats& s) { return s.drops; }); });
  reg.counter_fn("net.drop_bytes",
                 [sum] { return sum([](const PortStats& s) { return s.drop_bytes; }); });
  reg.counter_fn("net.link_down_drops",
                 [sum] { return sum([](const PortStats& s) { return s.link_down_drops; }); });
  reg.counter_fn("net.ecn_marks",
                 [sum] { return sum([](const PortStats& s) { return s.ecn_marks; }); });
  reg.counter_fn("net.failure_drops", [this] {
    std::uint64_t total = 0;
    for (const auto& sw : leaves_) total += sw->failure_drops();
    for (const auto& sw : spines_) total += sw->failure_drops();
    return total;
  });
}

sim::SimTime Topology::one_hop_delay() const {
  // Queueing delay of a fabric link filled to the ECN threshold.
  const double bytes = config_.ecn_bytes_for(config_.fabric_rate_bps);
  return sim::SimTime::from_seconds(bytes * 8.0 / config_.fabric_rate_bps);
}

sim::SimTime Topology::base_rtt() const {
  // 4 links each way (host->leaf->spine->leaf->host), full-size data out,
  // ACK back; serialization counted once per hop.
  const double data_ser = 4 * kPacketWire * 8.0 / std::min(config_.host_rate_bps, config_.fabric_rate_bps);
  const double ack_ser = 4 * 64 * 8.0 / std::min(config_.host_rate_bps, config_.fabric_rate_bps);
  return 8 * config_.link_delay + sim::SimTime::from_seconds(data_ser + ack_ser);
}

}  // namespace hermes::net
