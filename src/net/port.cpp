#include "hermes/net/port.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "hermes/obs/records.hpp"

namespace hermes::net {

Port::Port(sim::Simulator& simulator, std::string name, PortConfig config,
           Device* peer, int peer_in_port)
    : simulator_{simulator},
      name_{std::move(name)},
      config_{config},
      peer_{peer},
      peer_in_port_{peer_in_port},
      red_rng_{simulator.rng_stream(0x2ED0 ^ std::hash<std::string>{}(name_))} {}

bool Port::should_mark() {
  if (backlog_bytes_ < config_.ecn_threshold_bytes) return false;
  if (config_.ecn_mode == EcnMode::kStep) return true;
  const std::uint32_t max_th =
      config_.red_max_bytes > 0 ? config_.red_max_bytes : 3 * config_.ecn_threshold_bytes;
  if (backlog_bytes_ >= max_th) return true;
  const double span = static_cast<double>(max_th - config_.ecn_threshold_bytes);
  const double p = config_.red_pmax *
                   static_cast<double>(backlog_bytes_ - config_.ecn_threshold_bytes) / span;
  return red_rng_.chance(p);
}

// HERMES_HOT: flight-recorder append — builds a 64-byte POD record on the
// stack and copies it into the preallocated ring; must stay allocation-free.
void Port::record_packet(obs::PacketEvent ev, const Packet& p) {
  obs::TraceRecord r = obs::make_record(obs::RecordKind::kPacket,
                                        static_cast<std::uint64_t>(simulator_.now().ns()),
                                        name_id_, p.flow_id);
  r.u.packet.packet_id = p.id;
  r.u.packet.seq = p.seq;
  r.u.packet.size = p.size;
  r.u.packet.event = static_cast<std::uint8_t>(ev);
  r.u.packet.type = static_cast<std::uint8_t>(p.type);
  r.u.packet.ce = p.ce ? 1 : 0;
  rec_->append(r);
}

// HERMES_HOT: per-packet enqueue — admission, ECN mark, queue push.
void Port::send(Packet p) {
  if (!link_up_) [[unlikely]] {
    // Fault-injected link cut: the packet vanishes silently, like a pulled
    // fiber — no NACK, nothing the load balancer can observe directly.
    ++stats_.drops;
    stats_.drop_bytes += p.size;
    ++stats_.link_down_drops;
    if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kDrop, p);
    if (on_drop) on_drop(p);
    return;
  }
  const bool admitted = pool_ ? pool_->try_admit(p.size, backlog_bytes_)
                              : backlog_bytes_ + p.size <= config_.queue_capacity_bytes;
  if (!admitted) [[unlikely]] {
    ++stats_.drops;
    stats_.drop_bytes += p.size;
    if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kDrop, p);
    if (on_drop) on_drop(p);
    return;
  }
  // Mark on enqueue when the instantaneous backlog warrants it (step or
  // RED discipline). Marking considers the total backlog so that
  // high-priority probes also observe congestion built up by data.
  if (config_.ecn_enabled && p.ect && should_mark()) {
    p.ce = true;
    ++stats_.ecn_marks;
  }
  backlog_bytes_ += p.size;
  // Trace observers and the flight recorder are null in every
  // non-instrumented run: the hot path pays exactly one
  // predicted-not-taken branch per hook.
  if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kEnqueue, p);
  if (on_enqueue) [[unlikely]] on_enqueue(p);
  // hermeslint:reserve-audited(deque chunks recycle within the buffer-capped backlog — admission above bounds queue depth, and BENCH_core.json measures ~0.001 allocs/event end to end)
  (p.priority > 0 ? hi_ : lo_).push_back(std::move(p));
  try_transmit();
}

// HERMES_HOT: per-packet dequeue onto the wire.
void Port::try_transmit() {
  if (busy_) return;
  if (hi_.empty() && lo_.empty()) return;
  busy_ = true;
  auto& q = hi_.empty() ? lo_ : hi_;
  Packet p = std::move(q.front());
  q.pop_front();
  backlog_bytes_ -= p.size;
  if (pool_) pool_->release(p.size);
  dre_.add(p.size, simulator_.now());
  ++stats_.tx_packets;
  stats_.tx_bytes += p.size;
  if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kTransmit, p);
  if (on_transmit) [[unlikely]] on_transmit(p);
  const auto tx = tx_time(p.size);
  // The packet rides "the wire" until tx + propagation; deliveries are
  // FIFO, so a this-capturing event pops the next one. These two hop
  // continuations are THE event hot path: assert they stay within the
  // inline callback storage so no per-packet heap allocation can sneak
  // back in.
  // hermeslint:reserve-audited(wire_ holds at most the packets serialized within one propagation delay — a handful — so the deque stays inside its first chunks)
  wire_.push_back(std::move(p));
  const auto finish = [this] { finish_transmit(); };
  static_assert(sizeof(finish) <= sim::EventQueue::kInlineCallbackBytes,
                "packet-hop lambda must fit the inline event callback");
  simulator_.after(tx, finish);
}

// HERMES_HOT: serialization-done continuation (one per packet).
void Port::finish_transmit() {
  busy_ = false;
  const auto deliver = [this] { deliver_front(); };
  static_assert(sizeof(deliver) <= sim::EventQueue::kInlineCallbackBytes,
                "packet-hop lambda must fit the inline event callback");
  simulator_.after(config_.prop_delay, deliver);
  try_transmit();
}

// HERMES_HOT: propagation-done continuation (one per packet).
void Port::deliver_front() {
  Packet p = std::move(wire_.front());
  wire_.pop_front();
  peer_->receive(std::move(p), peer_in_port_);
}

}  // namespace hermes::net
