#include "hermes/net/port.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "hermes/obs/records.hpp"

namespace hermes::net {

Port::Port(sim::Simulator& simulator, PacketArena& arena, std::string name, PortConfig config,
           Device* peer, int peer_in_port)
    : simulator_{simulator},
      arena_{arena},
      name_{std::move(name)},
      config_{config},
      peer_{peer},
      peer_in_port_{peer_in_port},
      red_rng_{simulator.rng_stream(0x2ED0 ^ std::hash<std::string>{}(name_))} {}

bool Port::should_mark() {
  if (backlog_bytes_ < config_.ecn_threshold_bytes) return false;
  if (config_.ecn_mode == EcnMode::kStep) return true;
  const std::uint32_t max_th =
      config_.red_max_bytes > 0 ? config_.red_max_bytes : 3 * config_.ecn_threshold_bytes;
  if (backlog_bytes_ >= max_th) return true;
  const double span = static_cast<double>(max_th - config_.ecn_threshold_bytes);
  const double p = config_.red_pmax *
                   static_cast<double>(backlog_bytes_ - config_.ecn_threshold_bytes) / span;
  return red_rng_.chance(p);
}

// HERMES_HOT: flight-recorder append — builds a 64-byte POD record on the
// stack and copies it into the preallocated ring; must stay allocation-free.
void Port::record_packet(obs::PacketEvent ev, const Packet& p) {
  obs::TraceRecord r = obs::make_record(obs::RecordKind::kPacket,
                                        static_cast<std::uint64_t>(simulator_.now().ns()),
                                        name_id_, p.flow_id);
  r.u.packet.packet_id = p.id;
  r.u.packet.seq = p.seq;
  r.u.packet.size = p.size;
  r.u.packet.event = static_cast<std::uint8_t>(ev);
  r.u.packet.type = static_cast<std::uint8_t>(p.type);
  r.u.packet.ce = p.ce ? 1 : 0;
  rec_->append(r);
}

// HERMES_HOT: memoized serialization delay. The two cache lines cover the
// entire steady-state traffic mix (MSS data + 64B ACKs/probes); a miss
// recomputes through tx_time()'s exact double arithmetic, so a cached hop
// is bit-identical to an uncached one.
sim::SimTime Port::tx_time_cached(std::uint32_t bytes) {
  if (bytes == tx_cache_bytes_[0]) return tx_cache_time_[0];
  if (bytes == tx_cache_bytes_[1]) {
    // Promote: keep the most recent size in way 0.
    std::swap(tx_cache_bytes_[0], tx_cache_bytes_[1]);
    std::swap(tx_cache_time_[0], tx_cache_time_[1]);
    return tx_cache_time_[0];
  }
  tx_cache_bytes_[1] = tx_cache_bytes_[0];
  tx_cache_time_[1] = tx_cache_time_[0];
  tx_cache_bytes_[0] = bytes;
  tx_cache_time_[0] = tx_time(bytes);
  return tx_cache_time_[0];
}

// HERMES_HOT: per-packet enqueue — admission, ECN mark, queue push. The
// packet stays in its arena slot; only the 32-bit handle moves.
void Port::send(PacketHandle h) {
  Packet& p = arena_[h];
  if (!link_up_) [[unlikely]] {
    // Fault-injected link cut: the packet vanishes silently, like a pulled
    // fiber — no NACK, nothing the load balancer can observe directly.
    ++stats_.drops;
    stats_.drop_bytes += p.size;
    ++stats_.link_down_drops;
    if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kDrop, p);
    if (on_drop) on_drop(p);
    arena_.free(h);
    return;
  }
  const bool admitted = pool_ ? pool_->try_admit(p.size, backlog_bytes_)
                              : backlog_bytes_ + p.size <= config_.queue_capacity_bytes;
  if (!admitted) [[unlikely]] {
    ++stats_.drops;
    stats_.drop_bytes += p.size;
    if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kDrop, p);
    if (on_drop) on_drop(p);
    arena_.free(h);
    return;
  }
  // Mark on enqueue when the instantaneous backlog warrants it (step or
  // RED discipline). Marking considers the total backlog so that
  // high-priority probes also observe congestion built up by data.
  if (config_.ecn_enabled && p.ect && should_mark()) {
    p.ce = true;
    ++stats_.ecn_marks;
  }
  backlog_bytes_ += p.size;
  // Trace observers and the flight recorder are null in every
  // non-instrumented run: the hot path pays exactly one
  // predicted-not-taken branch per hook.
  if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kEnqueue, p);
  if (on_enqueue) [[unlikely]] on_enqueue(p);
  // hermeslint:reserve-audited(ring doubles geometrically; steady state never grows)
  (p.priority > 0 ? hi_ : lo_).push(h, p.size);
  try_transmit();
}

// HERMES_HOT: per-packet dequeue onto the wire.
void Port::try_transmit() {
  if (busy_) return;
  if (hi_.empty() && lo_.empty()) return;
  busy_ = true;
  PacketRing& q = hi_.empty() ? lo_ : hi_;
  const PacketHandle h = q.front_handle();
  const std::uint32_t bytes = q.front_bytes();
  q.pop();
  backlog_bytes_ -= bytes;
  if (pool_) pool_->release(bytes);
  dre_.add(bytes, simulator_.now());
  ++stats_.tx_packets;
  stats_.tx_bytes += bytes;
  if (rec_) [[unlikely]] record_packet(obs::PacketEvent::kTransmit, arena_[h]);
  if (on_transmit) [[unlikely]] on_transmit(arena_[h]);
  const auto tx = tx_time_cached(bytes);
  // The packet rides "the wire" until tx + propagation. Its delivery
  // deadline is recorded with the wire entry; the serialization-done
  // continuation below schedules the batched drain. These hop
  // continuations are THE event hot path: assert they stay within the
  // inline callback storage so no per-packet heap allocation can sneak
  // back in.
  // hermeslint:reserve-audited(wire ring doubles geometrically; bounded by in-flight packets)
  wire_.push(h, bytes, simulator_.now() + tx + config_.prop_delay);
  const auto finish = [this] { finish_transmit(); };
  static_assert(sizeof(finish) <= sim::EventQueue::kInlineCallbackBytes,
                "packet-hop lambda must fit the inline event callback");
  simulator_.after(tx, finish);
}

// HERMES_HOT: serialization-done continuation (one per packet). Schedules
// the wire drain for this packet's delivery deadline — unless a drain is
// already scheduled for exactly that time, in which case the pending
// drain will deliver this packet too (equal-deadline batch; deadlines
// are nondecreasing, so equality is the only coalescible case).
void Port::finish_transmit() {
  busy_ = false;
  const sim::SimTime due = simulator_.now() + config_.prop_delay;
  if (due != drain_scheduled_for_) {
    drain_scheduled_for_ = due;
    const auto drain = [this] { drain_wire(); };
    static_assert(sizeof(drain) <= sim::EventQueue::kInlineCallbackBytes,
                  "packet-hop lambda must fit the inline event callback");
    simulator_.after(config_.prop_delay, drain);
  }
  try_transmit();
}

// HERMES_HOT: propagation-done continuation — delivers every wire packet
// whose deadline has arrived (usually one; more when serialization was
// fast enough that several packets share a delivery time).
void Port::drain_wire() {
  const sim::SimTime now = simulator_.now();
  while (!wire_.empty() && wire_.front_due() <= now) {
    const PacketHandle h = wire_.front_handle();
    wire_.pop();
    peer_->receive(h, peer_in_port_);
  }
  // Every remaining entry's (strictly future) deadline has its own drain
  // pending; once the wire empties, drop the coalescing watermark so a
  // deadline landing exactly on a fired drain's time reschedules.
  if (wire_.empty()) drain_scheduled_for_ = sim::nsec(-1);
}

}  // namespace hermes::net
