#include "hermes/net/fattree.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "hermes/net/device.hpp"
#include "hermes/net/port.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"

namespace hermes::net {

namespace {
constexpr std::uint32_t kPacketWire = 1500;
/// FabricPath::link_idx doubles as the path-kind marker on fat-trees.
constexpr int kInterPodPath = 0;  ///< spine field = core switch id
constexpr int kIntraPodPath = 1;  ///< spine field = agg local index
}  // namespace

std::uint32_t FatTreeConfig::ecn_bytes_for(double rate_bps) const {
  if (ecn_threshold_bytes != 0) return ecn_threshold_bytes;
  const double pkts = std::max(20.0, 65.0 * rate_bps / 10e9);
  return static_cast<std::uint32_t>(pkts * kPacketWire);
}

std::uint32_t FatTreeConfig::queue_bytes_for(double rate_bps) const {
  if (queue_capacity_bytes != 0) return queue_capacity_bytes;
  return std::max<std::uint32_t>(6 * ecn_bytes_for(rate_bps), 150 * 1024);
}

PortConfig FatTreeConfig::port_config(double rate_bps, sim::SimTime prop_delay) const {
  PortConfig pc;
  pc.rate_bps = rate_bps;
  pc.prop_delay = prop_delay;
  pc.ecn_threshold_bytes = ecn_bytes_for(rate_bps);
  pc.queue_capacity_bytes = queue_bytes_for(rate_bps);
  pc.ecn_enabled = ecn_enabled;
  return pc;
}

/// Internal peer of a cross-shard egress port. The port delivers with
/// zero propagation delay into the portal (still inside the source
/// shard's event stream); the portal moves the packet out of the source
/// arena and stages it in the (src, dst) outbox with the full link delay
/// stamped on — so arrival timing is identical to a directly-peered
/// link, but the destination switch is only ever touched after the
/// barrier, inside its own shard.
class FatTree::Portal final : public Device {
 public:
  Portal(PacketArena& arena, sim::Simulator& sim, Outbox& box, sim::SimTime delay, Switch* dst_sw,
         std::uint8_t dst_port)
      : arena_{arena}, sim_{sim}, box_{box}, delay_{delay}, dst_sw_{dst_sw}, dst_port_{dst_port} {}

  void receive(PacketHandle h, int /*in_port*/) override {
    Packet p = std::move(arena_[h]);
    arena_.free(h);
    box_.push(sim_.now() + delay_, dst_sw_, dst_port_, std::move(p));
  }

 private:
  PacketArena& arena_;
  sim::Simulator& sim_;
  Outbox& box_;
  sim::SimTime delay_;
  Switch* dst_sw_;
  std::uint8_t dst_port_;
};

FatTree::FatTree(std::vector<sim::Simulator*> shard_sims, FatTreeConfig config)
    : config_{config}, sims_{std::move(shard_sims)} {
  const int k = config_.k;
  if (k < 4 || k % 2 != 0) throw std::invalid_argument("fat-tree k must be even and >= 4");
  if (sims_.empty()) throw std::invalid_argument("fat-tree needs at least one shard simulator");
  half_ = k / 2;
  const int S = static_cast<int>(sims_.size());
  const int pods = k;
  const int num_edges = pods * half_;
  const int num_aggs = pods * half_;
  const int cores = half_ * half_;

  num_leaves_ = num_edges;
  num_spines_ = cores;
  hosts_per_leaf_ = half_;
  host_rate_bps_ = config_.host_rate_bps;
  // Sustainable inter-rack load unit: total edge->agg uplink capacity
  // (the tier every inter-rack byte crosses exactly once upward).
  bisection_bps_ = static_cast<double>(num_edges) * half_ * config_.fabric_rate_bps;

  arenas_.reserve(S);
  for (int s = 0; s < S; ++s) arenas_.push_back(std::make_unique<PacketArena>());
  outboxes_.resize(static_cast<std::size_t>(S) * S);
  inboxes_.resize(static_cast<std::size_t>(S));

  // Devices, each built against its owning shard's simulator and arena.
  for (int h = 0; h < num_edges * half_; ++h) {
    const int s = shard_of_host(h);
    hosts_.push_back(std::make_unique<Host>(*sims_[s], *arenas_[s], h));
  }
  for (int e = 0; e < num_edges; ++e) {
    const int s = shard_of_leaf(e);
    edges_.push_back(
        std::make_unique<Switch>(*sims_[s], *arenas_[s], e, "edge" + std::to_string(e)));
  }
  for (int a = 0; a < num_aggs; ++a) {
    const int pod = a / half_;
    const int s = shard_of_pod(pod);
    aggs_.push_back(std::make_unique<Switch>(
        *sims_[s], *arenas_[s], a,
        "agg" + std::to_string(pod) + "." + std::to_string(a % half_)));
  }
  for (int c = 0; c < cores; ++c) {
    const int s = shard_of_core(c);
    cores_.push_back(
        std::make_unique<Switch>(*sims_[s], *arenas_[s], c, "core" + std::to_string(c)));
  }

  const PortConfig host_pc = config_.port_config(config_.host_rate_bps, config_.link_delay);
  const PortConfig fab_pc = config_.port_config(config_.fabric_rate_bps, config_.link_delay);
  // Cross-shard egress: zero wire delay into the portal, which re-adds
  // the link delay when stamping the mailbox entry.
  const PortConfig fab_portal_pc =
      config_.port_config(config_.fabric_rate_bps, sim::SimTime::zero());

  // Host <-> edge. Edge ports [0, k/2) go down to hosts.
  for (int e = 0; e < num_edges; ++e) {
    for (int h = 0; h < half_; ++h) {
      const int host_id = e * half_ + h;
      hosts_[host_id]->attach_uplink(host_pc, edges_[e].get(), h);
      const int p = edges_[e]->add_port(host_pc, hosts_[host_id].get(), 0);
      assert(p == h);
      (void)p;
    }
  }

  // Edge <-> agg, always intra-pod (and therefore intra-shard). Edge
  // ports [k/2, k) go up (port k/2+a to agg a); agg ports [0, k/2) go
  // down (port e to local edge e).
  for (int pod = 0; pod < pods; ++pod) {
    for (int el = 0; el < half_; ++el) {
      Switch* edge = edges_[pod * half_ + el].get();
      for (int a = 0; a < half_; ++a) {
        const int up = edge->add_port(fab_pc, aggs_[pod * half_ + a].get(), el);
        assert(up == uplink_port(a));
        edge->port(up).is_fabric = true;
      }
    }
    for (int a = 0; a < half_; ++a) {
      Switch* ag = aggs_[pod * half_ + a].get();
      for (int el = 0; el < half_; ++el) {
        const int down = ag->add_port(fab_pc, edges_[pod * half_ + el].get(), uplink_port(a));
        assert(down == el);
        ag->port(down).is_fabric = true;
      }
    }
  }

  // Agg <-> core: the only links that can cross shards. Agg ports
  // [k/2, k) go up (port k/2+j to core a*(k/2)+j, so agg a reaches core
  // group a); core c = a*(k/2)+j has one port per pod (port p to the
  // a-th agg of pod p).
  for (int pod = 0; pod < pods; ++pod) {
    for (int a = 0; a < half_; ++a) {
      Switch* ag = aggs_[pod * half_ + a].get();
      for (int j = 0; j < half_; ++j) {
        const int c = a * half_ + j;
        int up;
        if (shard_of_pod(pod) == shard_of_core(c)) {
          up = ag->add_port(fab_pc, cores_[c].get(), pod);
        } else {
          const int src = shard_of_pod(pod);
          portals_.push_back(std::make_unique<Portal>(
              *arenas_[src], *sims_[src], outbox(src, shard_of_core(c)), config_.link_delay,
              cores_[c].get(), static_cast<std::uint8_t>(pod)));
          up = ag->add_port(fab_portal_pc, portals_.back().get(), 0);
        }
        assert(up == uplink_port(j));
        ag->port(up).is_fabric = true;
      }
    }
  }
  for (int c = 0; c < cores; ++c) {
    const int a = c / half_;
    const int j = c % half_;
    Switch* core = cores_[c].get();
    for (int pod = 0; pod < pods; ++pod) {
      Switch* ag = aggs_[pod * half_ + a].get();
      int down;
      if (shard_of_core(c) == shard_of_pod(pod)) {
        down = core->add_port(fab_pc, ag, uplink_port(j));
      } else {
        const int src = shard_of_core(c);
        portals_.push_back(std::make_unique<Portal>(
            *arenas_[src], *sims_[src], outbox(src, shard_of_pod(pod)), config_.link_delay, ag,
            static_cast<std::uint8_t>(uplink_port(j))));
        down = core->add_port(fab_portal_pc, portals_.back().get(), 0);
      }
      assert(down == pod);
      (void)down;
      core->port(pod).is_fabric = true;
    }
  }

  // Enumerate paths per ordered leaf (edge) pair. Intra-pod pairs get
  // one path per agg (local_index = agg index); inter-pod pairs one per
  // core (local_index = core id).
  const int L = num_edges;
  const std::size_t intra = static_cast<std::size_t>(pods) * half_ * (half_ - 1) * half_;
  const std::size_t inter = static_cast<std::size_t>(pods) * (pods - 1) * half_ * half_ *
                            static_cast<std::size_t>(half_) * half_;
  all_paths_.reserve(intra + inter);
  pair_paths_.resize(static_cast<std::size_t>(L) * L);
  for (int src = 0; src < L; ++src) {
    for (int dst = 0; dst < L; ++dst) {
      if (src == dst) continue;
      auto& list = pair_paths_[static_cast<std::size_t>(src) * L + dst];
      const bool same_pod = pod_of_leaf(src) == pod_of_leaf(dst);
      const int n = same_pod ? half_ : half_ * half_;
      list.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        FabricPath p;
        p.id = static_cast<int>(all_paths_.size());
        p.src_leaf = src;
        p.dst_leaf = dst;
        p.spine = i;
        p.link_idx = same_pod ? kIntraPodPath : kInterPodPath;
        p.local_index = i;
        p.capacity_bps = config_.fabric_rate_bps;
        all_paths_.push_back(p);
        list.push_back(p);
      }
    }
  }
}

FatTree::~FatTree() = default;

std::vector<int> FatTree::leaves_of_shard(int shard) const {
  std::vector<int> out;
  for (int e = 0; e < num_leaves_; ++e)
    if (shard_of_leaf(e) == shard) out.push_back(e);
  return out;
}

const std::vector<FabricPath>& FatTree::paths_between_leaves(int src_leaf, int dst_leaf) const {
  if (src_leaf == dst_leaf) return empty_;
  return pair_paths_[static_cast<std::size_t>(src_leaf) * num_leaves_ + dst_leaf];
}

Route FatTree::forward_route(int src_host, int dst_host, int path_id) const {
  Route r;
  const int src_leaf = leaf_of(src_host);
  const int dst_leaf = leaf_of(dst_host);
  if (src_leaf == dst_leaf) {
    r.push(static_cast<std::uint8_t>(local_index(dst_host)));
    return r;
  }
  const FabricPath& p = all_paths_.at(static_cast<std::size_t>(path_id));
  assert(p.src_leaf == src_leaf && p.dst_leaf == dst_leaf);
  const int dst_el = dst_leaf % half_;
  if (p.link_idx == kIntraPodPath) {
    // edge --(agg p.spine)--> edge --> host: 3 hops.
    r.push(static_cast<std::uint8_t>(uplink_port(p.spine)));
    r.push(static_cast<std::uint8_t>(dst_el));
    r.push(static_cast<std::uint8_t>(local_index(dst_host)));
  } else {
    // edge -> agg a -> core (a,j) -> agg a of dst pod -> edge -> host.
    const int a = p.spine / half_;
    const int j = p.spine % half_;
    r.push(static_cast<std::uint8_t>(uplink_port(a)));
    r.push(static_cast<std::uint8_t>(uplink_port(j)));
    r.push(static_cast<std::uint8_t>(pod_of_leaf(dst_leaf)));
    r.push(static_cast<std::uint8_t>(dst_el));
    r.push(static_cast<std::uint8_t>(local_index(dst_host)));
  }
  return r;
}

Route FatTree::reverse_route(int src_host, int dst_host, int path_id) const {
  Route r;
  const int src_leaf = leaf_of(src_host);
  const int dst_leaf = leaf_of(dst_host);
  if (src_leaf == dst_leaf) {
    r.push(static_cast<std::uint8_t>(local_index(src_host)));
    return r;
  }
  const FabricPath& p = all_paths_.at(static_cast<std::size_t>(path_id));
  const int src_el = src_leaf % half_;
  if (p.link_idx == kIntraPodPath) {
    r.push(static_cast<std::uint8_t>(uplink_port(p.spine)));
    r.push(static_cast<std::uint8_t>(src_el));
    r.push(static_cast<std::uint8_t>(local_index(src_host)));
  } else {
    const int a = p.spine / half_;
    const int j = p.spine % half_;
    r.push(static_cast<std::uint8_t>(uplink_port(a)));
    r.push(static_cast<std::uint8_t>(uplink_port(j)));
    r.push(static_cast<std::uint8_t>(pod_of_leaf(src_leaf)));
    r.push(static_cast<std::uint8_t>(src_el));
    r.push(static_cast<std::uint8_t>(local_index(src_host)));
  }
  return r;
}

Port& FatTree::leaf_uplink(int leaf_id, int spine, int k) {
  assert(k == 0 && "fat-tree has no parallel links");
  (void)k;
  return edges_[static_cast<std::size_t>(leaf_id)]->port(uplink_port(spine));
}

void FatTree::set_link_state(int leaf_id, int spine, bool up, int k) {
  leaf_uplink(leaf_id, spine, k).set_link_up(up);
  aggs_[static_cast<std::size_t>(pod_of_leaf(leaf_id)) * half_ + spine]
      ->port(leaf_id % half_)
      .set_link_up(up);
}

void FatTree::set_link_rate(int leaf_id, int spine, double rate_bps, int k) {
  leaf_uplink(leaf_id, spine, k).set_rate_bps(rate_bps);
  aggs_[static_cast<std::size_t>(pod_of_leaf(leaf_id)) * half_ + spine]
      ->port(leaf_id % half_)
      .set_rate_bps(rate_bps);
}

double FatTree::configured_link_rate(int /*leaf_id*/, int /*spine*/, int /*k*/) const {
  return config_.fabric_rate_bps;
}

// HERMES_SHARDED: the one barrier-time routine allowed to move state
// across shards — everything goes through the mailbox API (Outbox ->
// Inbox merge); destination switches are only touched later, by the
// inbox delivery event running inside their own shard.
std::uint64_t FatTree::exchange_boundary() {
  const int S = num_shards();
  std::uint64_t moved = 0;
  for (int d = 0; d < S; ++d) {
    Inbox& ib = inboxes_[d];
    // Compact the delivered prefix before merging new mail.
    if (ib.head > 0) {
      ib.pending.erase(ib.pending.begin(),
                       ib.pending.begin() + static_cast<std::ptrdiff_t>(ib.head));
      ib.head = 0;
    }
    const std::size_t old_size = ib.pending.size();
    for (int s = 0; s < S; ++s) {
      if (s == d) continue;
      Outbox& ob = outbox(s, d);
      const std::size_t n = ob.size();
      if (n == 0) continue;
      for (std::size_t i = 0; i < n; ++i) {
        ib.pending.push_back(Mail{ob.deliver_at[i], static_cast<std::uint32_t>(s),
                                  static_cast<std::uint32_t>(i), ob.dst_sw[i], ob.dst_port[i],
                                  std::move(ob.pkts[i])});
      }
      moved += n;
      ob.clear();
    }
    if (ib.pending.size() == old_size) continue;  // no fresh mail: timer stays armed
    // Total order (deliver_at, src_shard, seq): unique keys, so the sort
    // and merge are deterministic. Mail staged in different rounds never
    // ties (each round's mail lands strictly after the previous round's;
    // DESIGN.md §12), so merging new mail behind the old is exact.
    const auto earlier = [](const Mail& a, const Mail& b) {
      if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
      if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
      return a.seq < b.seq;
    };
    std::sort(ib.pending.begin() + static_cast<std::ptrdiff_t>(old_size), ib.pending.end(),
              earlier);
    std::inplace_merge(ib.pending.begin(),
                       ib.pending.begin() + static_cast<std::ptrdiff_t>(old_size),
                       ib.pending.end(), earlier);
    arm_inbox(d);
  }
  boundary_packets_ += moved;
  return moved;
}

void FatTree::arm_inbox(int shard) {
  Inbox& ib = inboxes_[static_cast<std::size_t>(shard)];
  ib.timer.cancel();
  if (ib.head < ib.pending.size()) {
    ib.timer = sims_[static_cast<std::size_t>(shard)]->timer_at(
        ib.pending[ib.head].deliver_at, [this, shard] { deliver_inbox(shard); });
  }
}

void FatTree::deliver_inbox(int shard) {
  Inbox& ib = inboxes_[static_cast<std::size_t>(shard)];
  const sim::SimTime now = sims_[static_cast<std::size_t>(shard)]->now();
  while (ib.head < ib.pending.size() && ib.pending[ib.head].deliver_at == now) {
    Mail& m = ib.pending[ib.head++];
    m.dst_sw->receive(std::move(m.pkt), m.dst_port);
  }
  if (ib.head < ib.pending.size()) {
    ib.timer = sims_[static_cast<std::size_t>(shard)]->timer_at(
        ib.pending[ib.head].deliver_at, [this, shard] { deliver_inbox(shard); });
  } else {
    ib.pending.clear();
    ib.head = 0;
  }
}

void FatTree::set_recorder(obs::FlightRecorder* rec) {
  for (auto& h : hosts_) h->nic().set_recorder(rec);
  for (const auto* group : {&edges_, &aggs_, &cores_}) {
    for (const auto& sw : *group)
      for (int i = 0; i < sw->num_ports(); ++i) sw->port(i).set_recorder(rec);
  }
}

void FatTree::set_recorders(const std::vector<obs::FlightRecorder*>& recs) {
  assert(static_cast<int>(recs.size()) == num_shards());
  for (int h = 0; h < num_hosts(); ++h) hosts_[h]->nic().set_recorder(recs[shard_of_host(h)]);
  for (int e = 0; e < num_leaves_; ++e) {
    Switch& sw = *edges_[e];
    for (int i = 0; i < sw.num_ports(); ++i) sw.port(i).set_recorder(recs[shard_of_leaf(e)]);
  }
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    Switch& sw = *aggs_[a];
    const int shard = shard_of_pod(static_cast<int>(a) / half_);
    for (int i = 0; i < sw.num_ports(); ++i) sw.port(i).set_recorder(recs[shard]);
  }
  for (int c = 0; c < num_cores(); ++c) {
    Switch& sw = *cores_[c];
    for (int i = 0; i < sw.num_ports(); ++i) sw.port(i).set_recorder(recs[shard_of_core(c)]);
  }
}

void FatTree::register_metrics(obs::MetricsRegistry& reg) {
  const auto sum = [this](std::uint64_t (*pick)(const PortStats&)) {
    std::uint64_t total = 0;
    for (const auto& h : hosts_) total += pick(h->nic().stats());
    for (const auto* group : {&edges_, &aggs_, &cores_}) {
      for (const auto& sw : *group)
        for (int i = 0; i < sw->num_ports(); ++i) total += pick(sw->port(i).stats());
    }
    return total;
  };
  reg.counter_fn("net.tx_packets",
                 [sum] { return sum([](const PortStats& s) { return s.tx_packets; }); });
  reg.counter_fn("net.tx_bytes",
                 [sum] { return sum([](const PortStats& s) { return s.tx_bytes; }); });
  reg.counter_fn("net.drops", [sum] { return sum([](const PortStats& s) { return s.drops; }); });
  reg.counter_fn("net.drop_bytes",
                 [sum] { return sum([](const PortStats& s) { return s.drop_bytes; }); });
  reg.counter_fn("net.link_down_drops",
                 [sum] { return sum([](const PortStats& s) { return s.link_down_drops; }); });
  reg.counter_fn("net.ecn_marks",
                 [sum] { return sum([](const PortStats& s) { return s.ecn_marks; }); });
  reg.counter_fn("net.failure_drops", [this] {
    std::uint64_t total = 0;
    for (const auto* group : {&edges_, &aggs_, &cores_})
      for (const auto& sw : *group) total += sw->failure_drops();
    return total;
  });
}

sim::SimTime FatTree::one_hop_delay() const {
  const double bytes = config_.ecn_bytes_for(config_.fabric_rate_bps);
  return sim::SimTime::from_seconds(bytes * 8.0 / config_.fabric_rate_bps);
}

sim::SimTime FatTree::base_rtt() const {
  // Worst case is inter-pod: 6 links each way (host-edge-agg-core-agg-
  // edge-host), full-size data out, ACK back, serialization once per hop.
  const double rate = std::min(config_.host_rate_bps, config_.fabric_rate_bps);
  const double data_ser = 6 * kPacketWire * 8.0 / rate;
  const double ack_ser = 6 * 64 * 8.0 / rate;
  return 12 * config_.link_delay + sim::SimTime::from_seconds(data_ser + ack_ser);
}

}  // namespace hermes::net
