#include "hermes/net/trace_log.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hermes::net {

void TraceLog::attach(Port& port) {
  // Intern the port name once here (setup time); the per-event hooks
  // below only copy a 4-byte id.
  const std::uint32_t id = names_.intern(port.name());
  port.on_enqueue = [this, id, &port](const Packet& p) {
    record(TraceEvent::kEnqueue, id, port, p);
  };
  port.on_transmit = [this, id, &port](const Packet& p) {
    record(TraceEvent::kTransmit, id, port, p);
  };
  port.on_drop = [this, id, &port](const Packet& p) { record(TraceEvent::kDrop, id, port, p); };
}

void TraceLog::record(TraceEvent ev, std::uint32_t port_id, const Port& port, const Packet& p) {
  TraceEntry e;
  e.time = port.now();
  e.event = ev;
  e.port = port_id;
  e.packet_id = p.id;
  e.flow_id = p.flow_id;
  e.type = p.type;
  e.size = p.size;
  e.seq = p.seq;
  e.ce = p.ce;
  entries_.push_back(e);
}

std::vector<TraceEntry> TraceLog::entries_for_flow(std::uint64_t flow_id) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_)
    if (e.flow_id == flow_id) out.push_back(e);
  return out;
}

std::size_t TraceLog::count(TraceEvent e) const {
  std::size_t n = 0;
  for (const auto& entry : entries_)
    if (entry.event == e) ++n;
  return n;
}

std::string TraceLog::to_text() const {
  std::string out;
  char buf[192];
  for (const auto& e : entries_) {
    std::snprintf(buf, sizeof buf, "%12.3fus %s %-14s pkt=%llu flow=%llu seq=%llu size=%u%s\n",
                  e.time.to_usec(), to_string(e.event), names_.name(e.port).c_str(),
                  static_cast<unsigned long long>(e.packet_id),
                  static_cast<unsigned long long>(e.flow_id),
                  static_cast<unsigned long long>(e.seq), e.size, e.ce ? " CE" : "");
    out += buf;
  }
  return out;
}

}  // namespace hermes::net
