#include "hermes/net/packet.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace hermes::net::detail {

[[noreturn]] void route_overflow(std::uint8_t len) {
  std::fprintf(stderr,
               "fatal: Route::push past %u hops (len=%u) — the topology is deeper than "
               "kMaxRouteHops; widen Route::ports\n",
               static_cast<unsigned>(kMaxRouteHops), static_cast<unsigned>(len));
  std::abort();
}

}  // namespace hermes::net::detail
