#include "hermes/transport/tcp_sender.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

namespace hermes::transport {

namespace {
constexpr double kInfiniteSsthresh = 1e18;
}

TcpSender::TcpSender(sim::Simulator& simulator, net::Fabric& topo, lb::LoadBalancer& lb,
                     TcpConfig config, FlowSpec spec, SendFn send, CompletionFn on_complete)
    : simulator_{simulator},
      topo_{topo},
      lb_{lb},
      config_{config},
      spec_{spec},
      send_{std::move(send)},
      on_complete_{std::move(on_complete)} {
  ctx_.flow_id = spec_.id;
  ctx_.src = spec_.src;
  ctx_.dst = spec_.dst;
  ctx_.src_leaf = topo_.leaf_of(spec_.src);
  ctx_.dst_leaf = topo_.leaf_of(spec_.dst);
  record_.id = spec_.id;
  record_.size = spec_.size;
  record_.start = spec_.start;
  cwnd_ = static_cast<double>(config_.init_cwnd_pkts) * config_.mss;
  ssthresh_ = kInfiniteSsthresh;
  rto_ = config_.init_rto;
}

void TcpSender::start() {
  if (started_) return;
  started_ = true;
  if (spec_.size == 0) {
    complete();
    return;
  }
  send_window();
}

// HERMES_HOT: window pump, runs on start and after every ACK.
void TcpSender::send_window() {
  if (finished_) return;
  for (;;) {
    const auto window_limit = snd_una_ + static_cast<std::uint64_t>(cwnd_);
    if (snd_nxt_ >= spec_.size) break;
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.mss, spec_.size - snd_nxt_));
    if (snd_nxt_ + len > window_limit) break;
    transmit_segment(snd_nxt_, len);
    snd_nxt_ += len;
  }
  if (snd_nxt_ > snd_una_ && !rto_timer_.pending()) arm_rto();
}

// HERMES_HOT: builds and routes one data segment (per-packet).
void TcpSender::transmit_segment(std::uint64_t seq, std::uint32_t len) {
  const sim::SimTime now = simulator_.now();
  const bool is_retransmit = seq < max_sent_;

  net::Packet p;
  p.id = (spec_.id << 20) | next_packet_id_++;
  p.flow_id = spec_.id;
  p.src = spec_.src;
  p.dst = spec_.dst;
  p.type = net::PacketType::kData;
  p.payload = len;
  p.size = len + net::kHeaderBytes;
  p.seq = seq;
  p.ect = config_.dctcp;
  p.ts_sent = now;
  p.retransmit = is_retransmit;

  const int path = lb_.select_path(ctx_, p);
  if (path != ctx_.current_path) {
    if (ctx_.has_sent) {
      ++ctx_.reroutes;
      ++record_.reroutes;
    }
    ctx_.current_path = path;
    ctx_.acked_on_path = 0;
    ctx_.timeouts_on_path = 0;
  }
  p.path_id = path;
  p.route = topo_.forward_route(spec_.src, spec_.dst, path);
  if (path >= 0) p.conga_lbtag = static_cast<std::uint8_t>(topo_.path(path).local_index);

  ctx_.has_sent = true;
  ctx_.last_send = now;
  ctx_.rate_dre.add(p.size, now);
  if (seq + len > max_sent_) {
    ctx_.bytes_sent += seq + len - std::max(seq, max_sent_);
    max_sent_ = seq + len;
  }
  ++record_.packets_sent;
  if (is_retransmit) ++record_.packets_retransmitted;

  send_(std::move(p));
}

// HERMES_HOT: per-ACK bookkeeping — cwnd, RTT, dup-ACK, DCTCP alpha.
void TcpSender::on_ack(const net::Packet& ack) {
  if (finished_ || !started_) return;
  lb_.on_ack(ctx_, ack);

  if (ack.ack > snd_una_) {
    const std::uint64_t newly = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    ++ctx_.acked_on_path;
    ctx_.timeouts_on_path = 0;  // ACK progress breaks a timeout streak
    backoffs_ = 0;
    rto_ = config_.init_rto;

    maybe_update_dctcp(newly, ack.ece);

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dupacks_ = 0;
      } else {
        // NewReno partial ACK: retransmit the next hole, deflate.
        const std::uint32_t len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(config_.mss, spec_.size - snd_una_));
        transmit_segment(snd_una_, len);
        cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + config_.mss,
                         static_cast<double>(config_.mss));
      }
    } else {
      dupacks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly);  // slow start
      } else {
        cwnd_ += static_cast<double>(config_.mss) * static_cast<double>(newly) / cwnd_;
      }
      cwnd_ = std::min(cwnd_, static_cast<double>(config_.max_cwnd_bytes));
    }

    if (snd_una_ >= spec_.size) {
      complete();
      return;
    }
    arm_rto();
    send_window();
    return;
  }

  // Duplicate ACK.
  if (snd_nxt_ > snd_una_) {
    ++dupacks_;
    if (in_recovery_) {
      cwnd_ += config_.mss;  // inflation
      send_window();
    } else if (dupacks_ == config_.dupack_threshold) {
      enter_fast_recovery();
    }
  }
}

void TcpSender::enter_fast_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * config_.mss);
  cwnd_ = ssthresh_ + 3.0 * config_.mss;
  ++record_.fast_retransmits;
  lb_.on_retransmit(ctx_, ctx_.current_path);
  const std::uint32_t len =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.mss, spec_.size - snd_una_));
  transmit_segment(snd_una_, len);
}

void TcpSender::maybe_update_dctcp(std::uint64_t newly_acked, bool ece) {
  if (!config_.dctcp) return;
  window_acked_ += newly_acked;
  if (ece) window_marked_ += newly_acked;
  if (snd_una_ < window_end_) return;

  const double frac =
      window_acked_ > 0 ? static_cast<double>(window_marked_) / static_cast<double>(window_acked_)
                        : 0.0;
  alpha_ = (1.0 - config_.dctcp_g) * alpha_ + config_.dctcp_g * frac;
  if (window_marked_ > 0 && !in_recovery_) {
    cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0),
                     static_cast<double>(config_.min_cwnd_pkts) * config_.mss);
    ssthresh_ = cwnd_;  // stay in congestion avoidance after an ECN cut
  }
  window_end_ = snd_nxt_;
  window_acked_ = 0;
  window_marked_ = 0;
}

// HERMES_HOT: runs per ACK — must not touch the event queue in steady
// state (the physical check event below is shared across re-arms).
void TcpSender::arm_rto() {
  if (snd_una_ >= spec_.size) return;
  rto_deadline_ = simulator_.now() + rto_;
  if (!rto_timer_.pending()) {
    rto_timer_ = simulator_.timer_after(rto_, [this] { on_rto_check(); });
  }
}

// Fires at some past deadline; if ACKs have since pushed the logical
// deadline forward, chase it instead of timing out.
void TcpSender::on_rto_check() {
  if (finished_) return;
  const sim::SimTime now = simulator_.now();
  if (now < rto_deadline_) {
    rto_timer_ = simulator_.timer_after(rto_deadline_ - now, [this] { on_rto_check(); });
    return;
  }
  on_rto();
}

void TcpSender::on_rto() {
  if (finished_) return;
  ++record_.timeouts;
  ++ctx_.timeouts_on_path;
  ctx_.timeout_pending = true;

  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0 * config_.mss);
  cwnd_ = config_.mss;
  in_recovery_ = false;
  dupacks_ = 0;
  snd_nxt_ = snd_una_;  // go-back-N

  ++backoffs_;
  const auto backed = sim::SimTime::nanoseconds(config_.init_rto.ns() << std::min(backoffs_, 5u));
  rto_ = std::min(backed, config_.max_rto);

  lb_.on_timeout(ctx_);
  lb_.on_retransmit(ctx_, ctx_.current_path);
  arm_rto();
  send_window();
}

void TcpSender::complete() {
  finished_ = true;
  record_.finished = true;
  record_.end = simulator_.now();
  rto_timer_.cancel();
  lb_.on_flow_complete(ctx_);
  if (on_complete_) on_complete_(record_);
}

}  // namespace hermes::transport
