#include "hermes/transport/host_stack.hpp"

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

namespace hermes::transport {

HostStack::HostStack(sim::Simulator& simulator, net::Fabric& topo, int host_id,
                     lb::LoadBalancer& lb, TcpConfig config)
    : simulator_{simulator}, topo_{topo}, host_id_{host_id}, lb_{lb}, config_{config} {
  topo_.host(host_id_).on_receive = [this](net::Packet p, int) { handle(std::move(p)); };
}

TcpSender& HostStack::start_flow(const FlowSpec& spec, TcpSender::CompletionFn on_complete) {
  assert(spec.src == host_id_ && "flow must originate at this host");
  auto sender = std::make_unique<TcpSender>(
      simulator_, topo_, lb_, config_, spec,
      [this](net::Packet p) { send_raw(std::move(p)); }, std::move(on_complete));
  TcpSender& ref = *sender;
  senders_[spec.id] = std::move(sender);
  ref.start();
  return ref;
}

// HERMES_HOT: per-packet demux — every delivered packet funnels through
// handle(), so lookups here ride the one-entry endpoint caches.
TcpSender* HostStack::sender(std::uint64_t flow_id) {
  if (last_sender_ != nullptr && last_sender_id_ == flow_id) return last_sender_;
  auto it = senders_.find(flow_id);
  if (it == senders_.end()) return nullptr;
  last_sender_ = it->second.get();
  last_sender_id_ = flow_id;
  return last_sender_;
}

TcpReceiver* HostStack::receiver(std::uint64_t flow_id) {
  if (last_receiver_ != nullptr && last_receiver_id_ == flow_id) return last_receiver_;
  auto it = receivers_.find(flow_id);
  if (it == receivers_.end()) return nullptr;
  last_receiver_ = it->second.get();
  last_receiver_id_ = flow_id;
  return last_receiver_;
}

void HostStack::handle(net::Packet p) {
  switch (p.type) {
    case net::PacketType::kData: {
      TcpReceiver* rx = receiver(p.flow_id);
      if (rx == nullptr) {
        auto it = receivers_
                      .emplace(p.flow_id,
                               std::make_unique<TcpReceiver>(
                                   simulator_, topo_, lb_, config_, p.flow_id, p.src, p.dst,
                                   [this](net::Packet q) { send_raw(std::move(q)); }))
                      .first;
        rx = it->second.get();
        last_receiver_ = rx;
        last_receiver_id_ = p.flow_id;
      }
      rx->on_data(p);
      break;
    }
    case net::PacketType::kAck: {
      if (TcpSender* s = sender(p.flow_id)) s->on_ack(p);
      break;
    }
    case net::PacketType::kProbe:
      answer_probe(p);
      break;
    case net::PacketType::kProbeReply:
      if (on_probe_reply) on_probe_reply(p);
      break;
    case net::PacketType::kUdp:
      if (on_udp) on_udp(p);
      break;
  }
}

void HostStack::answer_probe(const net::Packet& probe) {
  net::Packet reply;
  reply.id = probe.id;
  reply.probe_id = probe.probe_id;
  reply.type = net::PacketType::kProbeReply;
  reply.src = host_id_;
  reply.dst = probe.src;
  reply.size = net::kProbeBytes;
  // Echo the forward-path congestion observations back to the prober.
  reply.ece = probe.ce;
  reply.ts_echo = probe.ts_sent;
  reply.path_id = probe.path_id;
  reply.priority = 1;
  reply.ect = false;
  reply.route = topo_.reverse_route(probe.src, probe.dst, probe.path_id);
  send_raw(std::move(reply));
}

}  // namespace hermes::transport
