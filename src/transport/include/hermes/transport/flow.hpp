#pragma once

#include <cstdint>

#include "hermes/sim/time.hpp"

namespace hermes::transport {

/// A flow to run: `size` bytes from `src` to `dst`, arriving at `start`.
struct FlowSpec {
  std::uint64_t id = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::uint64_t size = 0;
  sim::SimTime start{};
};

/// What a finished (or unfinished-at-end) flow looked like.
struct FlowRecord {
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  sim::SimTime start{};
  sim::SimTime end{};
  bool finished = false;
  std::uint32_t timeouts = 0;
  std::uint32_t fast_retransmits = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_retransmitted = 0;
  std::uint32_t reroutes = 0;

  [[nodiscard]] sim::SimTime fct() const { return end - start; }
};

}  // namespace hermes::transport
