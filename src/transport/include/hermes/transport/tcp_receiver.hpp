#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/transport/tcp_config.hpp"

namespace hermes::transport {

/// Receiver half of a TCP/DCTCP flow: cumulative ACK generation with
/// per-packet ECN echo (DCTCP-style immediate echo) and an optional
/// reordering buffer that masks spray-induced reordering (Presto*).
///
/// ACKs retrace the data packet's path in reverse at high priority, as the
/// paper's testbed does for accurate RTT measurement (§4).
class TcpReceiver {
 public:
  using SendFn = std::function<void(net::Packet)>;

  TcpReceiver(sim::Simulator& simulator, net::Fabric& topo, lb::LoadBalancer& lb,
              TcpConfig config, std::uint64_t flow_id, std::int32_t flow_src,
              std::int32_t flow_dst, SendFn send);

  void on_data(const net::Packet& p);

  [[nodiscard]] std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] std::uint64_t duplicate_bytes() const { return duplicate_bytes_; }

 private:
  void send_ack(bool ece, sim::SimTime ts_echo, int path_id, const net::Packet& data);
  /// Delayed-ACK path for in-order data (DCTCP CE-change flush rule).
  void schedule_or_flush(const net::Packet& p);
  void fire_held_ack();
  void on_delack_check();
  void flush_delayed();

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  lb::LoadBalancer& lb_;
  TcpConfig config_;
  std::uint64_t flow_id_;
  std::int32_t flow_src_;
  std::int32_t flow_dst_;
  SendFn send_;

  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< [seq, end) of buffered data
  std::uint64_t bytes_received_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
  std::uint64_t next_ack_id_ = 0;

  // Delayed-ACK state (config_.delayed_ack).
  std::uint32_t pending_acks_ = 0;
  bool ce_state_ = false;
  net::Packet last_data_;  ///< template for the coalesced ACK
  /// FIFO of data packets whose (duplicate) ACKs are held by the
  /// reorder mask. The hold is a constant, so the pending events fire
  /// in push order and the event capture needs only `this` — a full
  /// ~112-byte Packet capture would dominate the event-record size for
  /// every event in the simulation (kInlineCallbackBytes is a global
  /// budget). Grows to the reorder window's high-water mark, then
  /// recycles.
  std::vector<net::Packet> held_;
  std::size_t held_head_ = 0;
  sim::EventQueue::Handle delack_timer_;
  /// Logical delayed-ACK expiry (lazy timer, same scheme as the
  /// sender's RTO): flushing a batch no longer cancels the physical
  /// timer; the fired event compares against this deadline and either
  /// chases it, flushes, or dies when no batch is open.
  sim::SimTime delack_deadline_{};
};

}  // namespace hermes::transport
