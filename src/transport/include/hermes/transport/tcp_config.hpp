#pragma once

#include <cstdint>

#include "hermes/sim/time.hpp"

namespace hermes::transport {

/// Transport parameters (§5.1 of the paper): DCTCP by default with an
/// initial window of 10 packets and initial/minimum RTO of 10ms.
struct TcpConfig {
  std::uint32_t mss = 1460;          ///< payload bytes per segment
  std::uint32_t init_cwnd_pkts = 10;
  std::uint32_t min_cwnd_pkts = 2;   ///< floor after an ECN window cut
  std::uint64_t max_cwnd_bytes = 5 * 1024 * 1024;

  sim::SimTime init_rto = sim::msec(10);
  sim::SimTime max_rto = sim::msec(320);
  std::uint32_t dupack_threshold = 3;

  bool dctcp = true;        ///< false = plain NewReno, ECN ignored
  double dctcp_g = 1.0 / 16.0;

  /// Receiver-side reordering mask (Presto*'s reordering buffer): hold
  /// out-of-order arrivals for up to `reorder_hold` before emitting
  /// duplicate ACKs, so spraying does not trigger spurious fast
  /// retransmits while genuine losses are still recovered.
  bool reorder_buffer = false;
  sim::SimTime reorder_hold = sim::usec(300);

  /// Delayed ACKs with DCTCP's CE-change rule (RFC 8257 §3.2): coalesce
  /// up to `ack_every` in-order segments or `delack_timeout`, but flush
  /// immediately whenever the observed CE state flips so the sender's
  /// ECN fraction stays byte-accurate. Off by default: the paper's
  /// evaluation senses per packet.
  bool delayed_ack = false;
  std::uint32_t ack_every = 2;
  sim::SimTime delack_timeout = sim::usec(500);
};

}  // namespace hermes::transport
