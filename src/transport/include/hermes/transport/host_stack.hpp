#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/host.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/transport/flow.hpp"
#include "hermes/transport/tcp_config.hpp"
#include "hermes/transport/tcp_receiver.hpp"
#include "hermes/transport/tcp_sender.hpp"

namespace hermes::transport {

/// Per-host transport stack: multiplexes flows over the host's NIC,
/// creates receivers on demand, answers Hermes probes, and exposes hooks
/// for probe replies and UDP sinks. This is the "hypervisor" layer the
/// paper's end-host module lives in.
class HostStack {
 public:
  HostStack(sim::Simulator& simulator, net::Fabric& topo, int host_id,
            lb::LoadBalancer& lb, TcpConfig config);

  /// Start a flow originating at this host (spec.src must equal host_id).
  /// `on_complete` fires when the last byte is acknowledged.
  TcpSender& start_flow(const FlowSpec& spec, TcpSender::CompletionFn on_complete);

  /// Deliver a packet arriving at this host (wired to Host::on_receive).
  void handle(net::Packet p);

  [[nodiscard]] int host_id() const { return host_id_; }
  [[nodiscard]] TcpSender* sender(std::uint64_t flow_id);
  [[nodiscard]] TcpReceiver* receiver(std::uint64_t flow_id);
  [[nodiscard]] net::Host& host() { return topo_.host(host_id_); }

  /// Send a raw packet from this host (used by probers and UDP sources).
  void send_raw(net::Packet p) { host().send(std::move(p)); }

  /// Installed by the Hermes wiring: called with every arriving probe reply.
  std::function<void(const net::Packet&)> on_probe_reply;
  /// Optional sink for UDP payload accounting.
  std::function<void(const net::Packet&)> on_udp;

 private:
  void answer_probe(const net::Packet& probe);

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  int host_id_;
  lb::LoadBalancer& lb_;
  TcpConfig config_;

  std::unordered_map<std::uint64_t, std::unique_ptr<TcpSender>> senders_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TcpReceiver>> receivers_;
  // One-entry endpoint caches: packets arrive in flow bursts, so the
  // last-hit sender/receiver answers most per-packet lookups without a
  // hash probe. Safe because endpoints are never erased mid-run (the maps
  // hold node-stable unique_ptrs for the scenario's lifetime).
  TcpSender* last_sender_ = nullptr;
  std::uint64_t last_sender_id_ = ~0ull;
  TcpReceiver* last_receiver_ = nullptr;
  std::uint64_t last_receiver_id_ = ~0ull;
};

}  // namespace hermes::transport
