#pragma once

#include <cstdint>
#include <functional>

#include "hermes/lb/flow_ctx.hpp"
#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::transport {

/// Constant-bit-rate UDP source (used by the §2.2.2 microbenchmarks, e.g.
/// the 9 Gbps competitor in Example 2). Paths are chosen through the same
/// load balancer interface as TCP traffic.
class UdpSource {
 public:
  using SendFn = std::function<void(net::Packet)>;

  UdpSource(sim::Simulator& simulator, net::Fabric& topo, lb::LoadBalancer& lb,
            std::uint64_t flow_id, std::int32_t src, std::int32_t dst, double rate_bps,
            std::uint32_t payload_bytes, SendFn send)
      : simulator_{simulator},
        topo_{topo},
        lb_{lb},
        src_{src},
        dst_{dst},
        rate_bps_{rate_bps},
        payload_{payload_bytes},
        send_{std::move(send)} {
    ctx_.flow_id = flow_id;
    ctx_.src = src;
    ctx_.dst = dst;
    ctx_.src_leaf = topo.leaf_of(src);
    ctx_.dst_leaf = topo.leaf_of(dst);
  }

  void start() {
    running_ = true;
    emit();
  }
  void stop() {
    running_ = false;
    timer_.cancel();
  }

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void emit() {
    if (!running_) return;
    net::Packet p;
    p.id = (ctx_.flow_id << 20) | packets_sent_;
    p.flow_id = ctx_.flow_id;
    p.src = src_;
    p.dst = dst_;
    p.type = net::PacketType::kUdp;
    p.payload = payload_;
    p.size = payload_ + net::kHeaderBytes;
    p.ect = false;

    const int path = lb_.select_path(ctx_, p);
    ctx_.current_path = path;
    ctx_.has_sent = true;
    ctx_.last_send = simulator_.now();
    ctx_.bytes_sent += payload_;
    ctx_.rate_dre.add(p.size, simulator_.now());
    p.path_id = path;
    p.route = topo_.forward_route(src_, dst_, path);
    if (path >= 0) p.conga_lbtag = static_cast<std::uint8_t>(topo_.path(path).local_index);
    send_(std::move(p));
    ++packets_sent_;

    const auto gap = sim::SimTime::from_seconds((payload_ + net::kHeaderBytes) * 8.0 / rate_bps_);
    timer_ = simulator_.timer_after(gap, [this] { emit(); });
  }

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  lb::LoadBalancer& lb_;
  std::int32_t src_;
  std::int32_t dst_;
  double rate_bps_;
  std::uint32_t payload_;
  SendFn send_;

  lb::FlowCtx ctx_;
  bool running_ = false;
  std::uint64_t packets_sent_ = 0;
  sim::EventQueue::Handle timer_;
};

}  // namespace hermes::transport
