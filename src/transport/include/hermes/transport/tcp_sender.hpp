#pragma once

#include <cstdint>
#include <functional>

#include "hermes/lb/flow_ctx.hpp"
#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/transport/flow.hpp"
#include "hermes/transport/tcp_config.hpp"

namespace hermes::transport {

/// Sender half of a TCP/DCTCP flow.
///
/// Implements NewReno congestion control (slow start, AIMD congestion
/// avoidance, 3-dupack fast retransmit with NewReno partial-ACK recovery,
/// RTO with exponential backoff) plus the DCTCP extension (per-window ECN
/// fraction alpha, proportional window cut). The RTO is fixed at the
/// configured value as is standard in datacenter simulations (§5.1: both
/// initial and minimum RTO are 10ms).
///
/// Path selection is delegated to the LoadBalancer for every transmitted
/// segment; the sender maintains the per-flow context the schemes use
/// (flowlet gap, sent bytes, rate DRE, per-path ACK/timeout accounting
/// consumed by Hermes's blackhole detector).
class TcpSender {
 public:
  using SendFn = std::function<void(net::Packet)>;
  using CompletionFn = std::function<void(const FlowRecord&)>;

  TcpSender(sim::Simulator& simulator, net::Fabric& topo, lb::LoadBalancer& lb,
            TcpConfig config, FlowSpec spec, SendFn send, CompletionFn on_complete);

  /// Begin transmitting (typically scheduled at spec.start).
  void start();

  /// Process an arriving ACK for this flow.
  void on_ack(const net::Packet& ack);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const FlowRecord& record() const { return record_; }
  [[nodiscard]] lb::FlowCtx& ctx() { return ctx_; }
  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] double dctcp_alpha() const { return alpha_; }
  [[nodiscard]] std::uint64_t snd_una() const { return snd_una_; }

 private:
  void send_window();
  void transmit_segment(std::uint64_t seq, std::uint32_t len);
  void arm_rto();
  void on_rto_check();
  void on_rto();
  void enter_fast_recovery();
  void maybe_update_dctcp(std::uint64_t newly_acked, bool ece);
  void complete();

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  lb::LoadBalancer& lb_;
  TcpConfig config_;
  FlowSpec spec_;
  SendFn send_;
  CompletionFn on_complete_;

  lb::FlowCtx ctx_;
  FlowRecord record_;

  // Sequence space (bytes of payload).
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t max_sent_ = 0;  ///< transmission high-water mark
  std::uint64_t next_packet_id_ = 0;
  double cwnd_ = 0;
  double ssthresh_ = 0;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;

  // DCTCP state.
  double alpha_ = 0;
  std::uint64_t window_end_ = 0;
  std::uint64_t window_acked_ = 0;
  std::uint64_t window_marked_ = 0;

  // RTO state.
  sim::SimTime rto_{};
  sim::EventQueue::Handle rto_timer_;
  /// Logical RTO expiry. Every ACK re-arms the RTO, but cancelling and
  /// rescheduling a ~10ms-out timer per packet is the single hottest
  /// timer pattern in the simulator; instead the physical timer event is
  /// left in place and merely compares against this deadline when it
  /// fires, rescheduling itself forward if ACKs pushed the deadline out
  /// (a lazy timer). The timeout still takes effect at exactly
  /// last-arm + rto, so behaviour is unchanged.
  sim::SimTime rto_deadline_{};
  std::uint32_t backoffs_ = 0;

  bool started_ = false;
  bool finished_ = false;
};

}  // namespace hermes::transport
