#include "hermes/transport/tcp_receiver.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace hermes::transport {

TcpReceiver::TcpReceiver(sim::Simulator& simulator, net::Fabric& topo, lb::LoadBalancer& lb,
                         TcpConfig config, std::uint64_t flow_id, std::int32_t flow_src,
                         std::int32_t flow_dst, SendFn send)
    : simulator_{simulator},
      topo_{topo},
      lb_{lb},
      config_{config},
      flow_id_{flow_id},
      flow_src_{flow_src},
      flow_dst_{flow_dst},
      send_{std::move(send)} {}

void TcpReceiver::on_data(const net::Packet& p) {
  lb_.on_data_arrival(p);

  const std::uint64_t seq = p.seq;
  const std::uint64_t end = seq + p.payload;

  if (end <= rcv_nxt_) {
    // Entirely old data (spurious retransmission): re-ACK.
    duplicate_bytes_ += p.payload;
    send_ack(p.ce, p.ts_sent, p.path_id, p);
    return;
  }

  if (seq <= rcv_nxt_) {
    // DCTCP delayed ACK: a CE-state flip must flush the pending ACK
    // *before* the cumulative point advances, so the old-state ACK covers
    // exactly the bytes received under the old CE state (RFC 8257).
    if (config_.delayed_ack && pending_acks_ > 0 && p.ce != ce_state_) flush_delayed();
    // In-order (possibly partially old): advance and merge buffered data.
    bytes_received_ += end - std::max(seq, rcv_nxt_);
    rcv_nxt_ = std::max(rcv_nxt_, end);
    while (!ooo_.empty() && ooo_.begin()->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, ooo_.begin()->second);
      ooo_.erase(ooo_.begin());
    }
    if (config_.delayed_ack) {
      schedule_or_flush(p);
    } else {
      send_ack(p.ce, p.ts_sent, p.path_id, p);
    }
    return;
  }

  // Out of order: buffer it.
  bytes_received_ += p.payload;
  auto [it, inserted] = ooo_.emplace(seq, end);
  if (!inserted) it->second = std::max(it->second, end);

  if (!config_.reorder_buffer) {
    send_ack(p.ce, p.ts_sent, p.path_id, p);  // immediate duplicate ACK
    return;
  }
  // Reordering mask: hold the ACK briefly. If the gap fills in the
  // meantime the deferred ACK is cumulative and no dupACK ever appears;
  // a genuine loss still surfaces as dupACKs after the hold expires.
  // hermeslint:reserve-audited(held_ grows to the reorder window high-water mark once, then recycles)
  held_.push_back(p);
  simulator_.after(config_.reorder_hold, [this] { fire_held_ack(); });
}

// Deferred duplicate ACK from the reorder mask. The hold delay is
// constant, so events fire in exactly the order packets were held.
void TcpReceiver::fire_held_ack() {
  net::Packet cause = held_[held_head_++];
  if (held_head_ == held_.size()) {
    held_.clear();
    held_head_ = 0;
  }
  send_ack(cause.ce, cause.ts_sent, cause.path_id, cause);
}

void TcpReceiver::schedule_or_flush(const net::Packet& p) {
  // (CE flips were already flushed by on_data before rcv_nxt advanced.)
  ce_state_ = p.ce;
  last_data_ = p;
  ++pending_acks_;
  if (pending_acks_ >= config_.ack_every) {
    flush_delayed();
    return;
  }
  if (pending_acks_ == 1) delack_deadline_ = simulator_.now() + config_.delack_timeout;
  if (!delack_timer_.pending()) {
    delack_timer_ = simulator_.timer_after(config_.delack_timeout, [this] { on_delack_check(); });
  }
}

// Physical delack event: chase the logical deadline (the batch that
// armed this event may long since have flushed and a newer batch
// opened), flush when genuinely due, die quietly when no batch is open.
void TcpReceiver::on_delack_check() {
  if (pending_acks_ == 0) return;
  const sim::SimTime now = simulator_.now();
  if (now < delack_deadline_) {
    delack_timer_ = simulator_.timer_after(delack_deadline_ - now, [this] { on_delack_check(); });
    return;
  }
  flush_delayed();
}

void TcpReceiver::flush_delayed() {
  if (pending_acks_ == 0) return;
  pending_acks_ = 0;
  // The physical delack event (if any) is left pending: on_delack_check
  // sees pending_acks_ == 0 and dies without side effects.
  send_ack(ce_state_, last_data_.ts_sent, last_data_.path_id, last_data_);
}

void TcpReceiver::send_ack(bool ece, sim::SimTime ts_echo, int path_id,
                           const net::Packet& data) {
  net::Packet ack;
  ack.id = (flow_id_ << 20) | (0x80000 + next_ack_id_++);
  ack.flow_id = flow_id_;
  ack.src = flow_dst_;  // the ACK originates at the flow's destination
  ack.dst = flow_src_;
  ack.type = net::PacketType::kAck;
  ack.size = net::kAckBytes;
  ack.ack = rcv_nxt_;
  ack.ece = ece;
  ack.ect = false;
  ack.ts_echo = ts_echo;
  ack.path_id = path_id;
  ack.priority = 1;  // ACKs ride the high-priority queue (§4)
  ack.route = topo_.reverse_route(flow_src_, flow_dst_, path_id);
  lb_.decorate_ack(data, ack);
  send_(std::move(ack));
}

}  // namespace hermes::transport
