#include "hermes/obs/string_table.hpp"

#include <cstdint>
#include <string>
#include <string_view>

namespace hermes::obs {

std::uint32_t StringTable::intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  names_.emplace_back(s);
  const auto id = static_cast<std::uint32_t>(names_.size());
  index_.emplace(names_.back(), id);
  return id;
}

std::uint32_t StringTable::find(std::string_view s) const {
  const auto it = index_.find(s);
  return it == index_.end() ? 0 : it->second;
}

const std::string& StringTable::name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  if (id == 0 || id > names_.size()) return kUnknown;
  return names_[id - 1];
}

}  // namespace hermes::obs
