#include "hermes/obs/flight_recorder.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace hermes::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity, StringTable* shared) : shared_{shared} {
  const std::size_t cap = round_up_pow2(capacity);
  ring_.resize(cap);
  // Zero the slots (including struct padding) so a dumped ring is
  // byte-stable regardless of what the allocator handed us.
  std::memset(ring_.data(), 0, cap * sizeof(TraceRecord));
  mask_ = cap - 1;
}

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);  // hermeslint:reserve-audited(exact count known: records currently held)
  const std::uint64_t first = head_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(first + i) & mask_]);
  }
  return out;
}

}  // namespace hermes::obs
