#include "hermes/obs/trace_diff.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hermes/obs/records.hpp"

namespace hermes::obs {

namespace {

/// Decision-record indices of one flow, chronological. The flow index
/// hands us the flow's records in O(log n); we keep only decisions.
std::vector<std::uint32_t> decision_indices(const LoadedTrace& t, std::uint64_t flow_id) {
  std::vector<std::uint32_t> out;
  for (const std::uint32_t idx : t.flow_records(flow_id)) {
    if (t.records[idx].kind == RecordKind::kDecision) out.push_back(idx);
  }
  return out;
}

/// Name of the first differing field, or nullptr when records match.
const char* first_field_diff(const TraceRecord& a, const TraceRecord& b) {
  const DecisionPayload& da = a.u.decision;
  const DecisionPayload& db = b.u.decision;
  if (da.kind != db.kind) return "kind";
  if (da.from_path != db.from_path) return "from_path";
  if (da.to_path != db.to_path) return "to_path";
  if (da.from_cond != db.from_cond) return "from_cond";
  if (da.to_cond != db.to_cond) return "to_cond";
  if (da.delta_rtt_ns != db.delta_rtt_ns) return "delta_rtt_ns";
  if (da.delta_ecn != db.delta_ecn) return "delta_ecn";
  if (da.sent_bytes != db.sent_bytes) return "sent_bytes";
  if (da.rate_bps != db.rate_bps) return "rate_bps";
  if (da.src_leaf != db.src_leaf) return "src_leaf";
  if (da.dst_leaf != db.dst_leaf) return "dst_leaf";
  if (a.time_ns != b.time_ns) return "time_ns";
  return nullptr;
}

}  // namespace

const DecisionDiff* DiffResult::first() const {
  const DecisionDiff* best = nullptr;
  for (const DecisionDiff& d : divergences) {
    if (best == nullptr || d.time_ns < best->time_ns ||
        (d.time_ns == best->time_ns && d.flow_id < best->flow_id)) {
      best = &d;
    }
  }
  return best;
}

DiffResult diff_decisions(const LoadedTrace& a, const LoadedTrace& b) {
  DiffResult res;
  for (const TraceRecord& r : a.records) {
    if (r.kind == RecordKind::kDecision) ++res.decisions_a;
  }
  for (const TraceRecord& r : b.records) {
    if (r.kind == RecordKind::kDecision) ++res.decisions_b;
  }

  // Merge the two ascending flow-range lists so flows present in only
  // one trace are still compared (and reported as missing on the other
  // side once their first decision has no counterpart).
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.flow_ranges.size() || ib < b.flow_ranges.size()) {
    std::uint64_t flow = 0;
    if (ib >= b.flow_ranges.size()) {
      flow = a.flow_ranges[ia].flow_id;
    } else if (ia >= a.flow_ranges.size()) {
      flow = b.flow_ranges[ib].flow_id;
    } else {
      flow = std::min(a.flow_ranges[ia].flow_id, b.flow_ranges[ib].flow_id);
    }
    if (ia < a.flow_ranges.size() && a.flow_ranges[ia].flow_id == flow) ++ia;
    if (ib < b.flow_ranges.size() && b.flow_ranges[ib].flow_id == flow) ++ib;

    const std::vector<std::uint32_t> das = decision_indices(a, flow);
    const std::vector<std::uint32_t> dbs = decision_indices(b, flow);
    if (das.empty() && dbs.empty()) continue;  // packet-only flow: nothing to align
    ++res.flows_compared;

    const std::size_t n = das.size() < dbs.size() ? das.size() : dbs.size();
    bool diverged = false;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceRecord& ra = a.records[das[i]];
      const TraceRecord& rb = b.records[dbs[i]];
      if (const char* field = first_field_diff(ra, rb)) {
        res.divergences.push_back({flow, i, static_cast<std::int64_t>(das[i]),
                                   static_cast<std::int64_t>(dbs[i]), field, ra.time_ns});
        diverged = true;
        break;
      }
    }
    if (!diverged && das.size() != dbs.size()) {
      // Streams agree up to the shorter side, then one keeps deciding.
      if (das.size() > dbs.size()) {
        res.divergences.push_back({flow, n, static_cast<std::int64_t>(das[n]), -1, "missing-in-b",
                                   a.records[das[n]].time_ns});
      } else {
        res.divergences.push_back({flow, n, -1, static_cast<std::int64_t>(dbs[n]), "missing-in-a",
                                   b.records[dbs[n]].time_ns});
      }
    }
  }
  return res;
}

}  // namespace hermes::obs
