#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"

namespace hermes::obs {

/// A trace file read back into memory: the raw records plus the string
/// table needed to resolve their name ids, plus the flow index that
/// makes per-flow queries O(log n) on large traces.
struct LoadedTrace {
  /// One flow's slice of the index: `count` entries of `flow_perm`
  /// starting at `begin` are the record indices of `flow_id`, in
  /// chronological (append) order.
  struct FlowRange {
    std::uint64_t flow_id = 0;
    std::uint64_t begin = 0;
    std::uint64_t count = 0;
  };

  std::vector<TraceRecord> records;
  std::vector<std::string> names;  ///< index = id - 1, as written
  std::uint64_t overwritten = 0;   ///< records lost to ring wrap before dump

  /// Ranges in ascending flow-id order (binary-searchable). Written at
  /// dump time for schema >= 2 traces; rebuilt in memory when loading a
  /// v1 trace, so callers never need to care which schema they read.
  std::vector<FlowRange> flow_ranges;
  /// Record indices grouped by flow (see FlowRange).
  std::vector<std::uint32_t> flow_perm;

  /// Resolve a name id ("?" for 0 / out of range), mirroring
  /// StringTable::name so renderers never branch on corrupt input.
  [[nodiscard]] const std::string& name(std::uint32_t id) const;

  /// Record indices of one flow in chronological order (empty when the
  /// flow is absent). Binary search over flow_ranges: O(log n).
  [[nodiscard]] std::span<const std::uint32_t> flow_records(std::uint64_t flow_id) const;

  /// All flow ids present, ascending.
  [[nodiscard]] std::vector<std::uint64_t> flow_ids() const;
};

/// Build the flow index for a record stream: `perm` becomes the record
/// indices stably grouped by flow id (chronological within each flow),
/// `ranges` the ascending per-flow slices. Shared by the trace writer
/// (dump-time index) and the v1 reader (in-memory rebuild).
void build_flow_index(const std::vector<TraceRecord>& records,
                      std::vector<LoadedTrace::FlowRange>& ranges,
                      std::vector<std::uint32_t>& perm);

/// Dump the recorder's held records and string table to `path` in trace
/// format schema v2 (little-endian, 64-byte records, flow-index footer).
/// Returns false on I/O failure.
bool write_trace(const std::string& path, const FlightRecorder& rec);

/// Merge per-shard recorders into one schema-v2 trace: snapshots are
/// concatenated, stably sorted by (time_ns, shard id), and written with a
/// rebuilt flow index. All recorders must share one StringTable (the
/// sharded harness constructs them that way); returns false otherwise,
/// on an empty recorder list, or on I/O failure.
bool write_merged_trace(const std::string& path, const std::vector<const FlightRecorder*>& shards);

/// Load a schema v1 or v2 trace file. Returns false (and leaves `out`
/// empty) on I/O failure, bad magic, version/record-size mismatch, or a
/// truncated/corrupt body — partial input never yields partial output;
/// `err` (when non-null) receives a one-line reason.
bool read_trace(const std::string& path, LoadedTrace& out, std::string* err = nullptr);

}  // namespace hermes::obs
