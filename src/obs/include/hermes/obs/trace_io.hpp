#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"

namespace hermes::obs {

/// A trace file read back into memory: the raw records plus the string
/// table needed to resolve their name ids.
struct LoadedTrace {
  std::vector<TraceRecord> records;
  std::vector<std::string> names;  ///< index = id - 1, as written
  std::uint64_t overwritten = 0;   ///< records lost to ring wrap before dump

  /// Resolve a name id ("?" for 0 / out of range), mirroring
  /// StringTable::name so renderers never branch on corrupt input.
  [[nodiscard]] const std::string& name(std::uint32_t id) const;
};

/// Dump the recorder's held records and string table to `path` in trace
/// format schema v1 (little-endian, 64-byte records). Returns false on
/// I/O failure.
bool write_trace(const std::string& path, const FlightRecorder& rec);

/// Load a schema-v1 trace file. Returns false (and leaves `out` empty)
/// on I/O failure, bad magic, or version/record-size mismatch; `err`
/// (when non-null) receives a one-line reason.
bool read_trace(const std::string& path, LoadedTrace& out, std::string* err = nullptr);

}  // namespace hermes::obs
