#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hermes/obs/records.hpp"
#include "hermes/obs/string_table.hpp"

namespace hermes::obs {

/// Fixed-capacity binary flight recorder: a power-of-two ring of POD
/// TraceRecords, appended from packet hot paths without allocating.
/// When full it overwrites the oldest records (black-box semantics: the
/// tail of history is what you want when diagnosing a failure) and
/// counts how many were lost.
///
/// Components hold a `FlightRecorder*` that is null when observability
/// is off; every instrumentation site guards with
/// `if (rec_) [[unlikely]] rec_->append(...)` so the disabled case is a
/// single predictable-not-taken branch — same pattern as the existing
/// Port observer hooks. Name ids come from the owned StringTable and
/// are interned at component-construction time, never on a hot path.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 64) and fully
  /// preallocated here, so append() never touches the allocator.
  ///
  /// `shared` (optional) substitutes an external StringTable for the
  /// owned one: the sharded harness hands every per-shard recorder the
  /// same table so name ids stay consistent across shards and a merged
  /// trace needs no id remapping. The table must outlive the recorder,
  /// and interning stays a setup-time (single-threaded) operation.
  explicit FlightRecorder(std::size_t capacity = 1u << 16, StringTable* shared = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one record. Allocation-free and O(1); overwrites the oldest
  /// record when the ring is full. Stamps the recorder's shard id into
  /// the record header (pad[0]) — 0 for ordinary serial recorders, so
  /// serial trace bytes are unchanged.
  // HERMES_HOT
  void append(const TraceRecord& r) {
    TraceRecord& slot = ring_[static_cast<std::size_t>(head_) & mask_];
    slot = r;
    slot.pad[0] = shard_;
    ++head_;
  }

  /// Which shard's event stream this recorder captures (stamped into
  /// every subsequent append; see TraceRecord::pad[0]).
  void set_shard(std::uint8_t shard) { shard_ = shard; }
  [[nodiscard]] std::uint8_t shard() const { return shard_; }

  /// Intern a location name (setup-time only; allocates).
  std::uint32_t intern(std::string_view s) { return shared_ ? shared_->intern(s) : names_.intern(s); }

  [[nodiscard]] const StringTable& names() const { return shared_ ? *shared_ : names_; }

  /// Records currently held (≤ capacity()).
  [[nodiscard]] std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_) : ring_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Total appends ever seen, including overwritten ones.
  [[nodiscard]] std::uint64_t total_appended() const { return head_; }

  /// Records lost to ring wrap-around.
  [[nodiscard]] std::uint64_t overwritten() const {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }

  /// Held records in append (chronological) order. Allocates; for dump
  /// and analysis paths only.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Drop all records (the string table is kept — ids stay valid).
  void clear() { head_ = 0; }

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t head_ = 0;  ///< total appends; next slot = head_ & mask_
  std::size_t mask_ = 0;    ///< ring_.size() - 1 (size is a power of two)
  std::uint8_t shard_ = 0;  ///< stamped into every record's pad[0]
  StringTable names_;             ///< owned table (unused when shared_ set)
  StringTable* shared_ = nullptr; ///< external table shared across shards
};

}  // namespace hermes::obs
