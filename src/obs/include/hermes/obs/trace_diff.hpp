#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hermes/obs/trace_io.hpp"

namespace hermes::obs {

/// Where two traces' Algorithm-2 decision streams first part ways for one
/// flow. `a_index`/`b_index` are indices into the respective
/// LoadedTrace::records; -1 means that side ran out of decisions (one
/// binary decided more often than the other).
struct DecisionDiff {
  std::uint64_t flow_id = 0;
  std::size_t ordinal = 0;  ///< nth decision of this flow (0-based)
  std::int64_t a_index = -1;
  std::int64_t b_index = -1;
  /// First differing field ("kind", "to_path", "delta_rtt_ns", ...), or
  /// "missing-in-a"/"missing-in-b" when a side has no such decision.
  const char* field = "";
  /// Sim time of the divergent decision (side A's when present, else B's)
  /// — what "first divergence" is ordered by.
  std::uint64_t time_ns = 0;
};

/// Result of aligning two traces' decision records flow by flow.
struct DiffResult {
  std::uint64_t decisions_a = 0;
  std::uint64_t decisions_b = 0;
  std::uint64_t flows_compared = 0;  ///< union of flows with decisions
  /// Per-flow first divergence, in ascending flow-id order. Empty means
  /// the decision streams are identical.
  std::vector<DecisionDiff> divergences;

  [[nodiscard]] bool identical() const { return divergences.empty(); }
  /// The divergence earliest in simulated time (ties: lowest flow id);
  /// null when identical. This is "the first divergent decision" a
  /// same-seed regression hunt starts from.
  [[nodiscard]] const DecisionDiff* first() const;
};

/// Align Algorithm-2 decision records of two traces by flow id (using the
/// flow index, so cost is proportional to decision count, not trace
/// size) and report each flow's first divergence. Two decisions are equal
/// when every recorded field — kind, paths, conditions, ΔRTT, ΔECN, S, R,
/// leaves, and sim time — matches exactly.
[[nodiscard]] DiffResult diff_decisions(const LoadedTrace& a, const LoadedTrace& b);

}  // namespace hermes::obs
