#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::obs {

/// Interned names for trace records and metrics: every location string
/// (port name, balancer name, fault target) is stored once, and hot-path
/// records carry a 4-byte id instead of a heap-owning std::string.
///
/// Ids are assigned in intern() call order starting at 1 (0 is "never
/// interned"), which is deterministic for a fixed scenario build order —
/// so a dumped trace resolves to identical text across runs and across
/// standard libraries (the index is a std::map, not hash-ordered).
///
/// Interning is a *setup-time* operation (component construction,
/// recorder attachment); nothing on a packet hot path may call it.
class StringTable {
 public:
  /// Id for `s`, allocating one on first sight. Never returns 0.
  std::uint32_t intern(std::string_view s);

  /// Id for `s` if already interned, else 0 (never allocates).
  [[nodiscard]] std::uint32_t find(std::string_view s) const;

  /// Resolve an id; unknown / zero ids yield "?" so renderers never
  /// have to branch on corrupt input.
  [[nodiscard]] const std::string& name(std::uint32_t id) const;

  /// Number of interned names (max id currently assigned).
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(names_.size());
  }

 private:
  std::vector<std::string> names_;                       ///< index = id - 1
  std::map<std::string, std::uint32_t, std::less<>> index_;
};

}  // namespace hermes::obs
