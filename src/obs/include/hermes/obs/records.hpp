#pragma once

#include <cstdint>
#include <cstring>

namespace hermes::obs {

/// What a flight-recorder record describes. Values are part of the trace
/// file format (schema v1) — append only, never renumber.
enum class RecordKind : std::uint8_t {
  kNone = 0,
  kPacket = 1,    ///< packet lifecycle at a port (enqueue/transmit/drop)
  kQueue = 2,     ///< periodic queue-backlog sample
  kFault = 3,     ///< injected fault onset/recovery transition
  kDecision = 4,  ///< Hermes Algorithm 2 decision (placement/reroute/latch)
};

[[nodiscard]] constexpr const char* to_string(RecordKind k) {
  switch (k) {
    case RecordKind::kNone: return "none";
    case RecordKind::kPacket: return "packet";
    case RecordKind::kQueue: return "queue";
    case RecordKind::kFault: return "fault";
    case RecordKind::kDecision: return "decision";
  }
  return "?";
}

/// Packet lifecycle events (mirrors net::TraceEvent; duplicated here so
/// the trace format does not depend on net/ headers).
enum class PacketEvent : std::uint8_t { kEnqueue = 0, kTransmit = 1, kDrop = 2 };

[[nodiscard]] constexpr const char* to_string(PacketEvent e) {
  switch (e) {
    case PacketEvent::kEnqueue: return "ENQ";
    case PacketEvent::kTransmit: return "TX";
    case PacketEvent::kDrop: return "DROP";
  }
  return "?";
}

/// Why Hermes (re)placed a flow — Algorithm 2's branches plus the two
/// failure-latch lifecycle events the fig16/fig17 debugging story needs.
enum class DecisionKind : std::uint8_t {
  kInitialPlacement = 0,   ///< line 3: first packet of a flow
  kTimeoutEscape = 1,      ///< line 3: flow had an RTO, pick fresh
  kFailureEscape = 2,      ///< line 3: current path latched failed
  kCongestionReroute = 3,  ///< lines 14-22: notably-better reroute taken
  kBlackholeLatch = 4,     ///< §3.1.2 detector latched (src,dst,path)
  kLatchExpire = 5,        ///< a failure latch expired without re-confirmation
};

[[nodiscard]] constexpr const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kInitialPlacement: return "initial-placement";
    case DecisionKind::kTimeoutEscape: return "timeout-escape";
    case DecisionKind::kFailureEscape: return "failure-escape";
    case DecisionKind::kCongestionReroute: return "congestion-reroute";
    case DecisionKind::kBlackholeLatch: return "blackhole-latch";
    case DecisionKind::kLatchExpire: return "latch-expire";
  }
  return "?";
}

/// Path condition codes stored in decision records. Matches the paper's
/// Algorithm 1 characterization; engine::PathType casts to this 1:1
/// (kGood=0, kGray=1, kCongested=2, kFailed=3). 255 = not applicable.
inline constexpr std::uint8_t kPathCondNone = 255;

[[nodiscard]] constexpr const char* path_condition_name(std::uint8_t c) {
  switch (c) {
    case 0: return "good";
    case 1: return "gray";
    case 2: return "congested";
    case 3: return "failed";
    case kPathCondNone: return "-";
  }
  return "?";
}

// HERMES_POD_RECORD
/// Payload of a RecordKind::kPacket record.
struct PacketPayload {
  std::uint64_t packet_id;
  std::uint64_t seq;
  std::uint32_t size;
  std::uint8_t event;  ///< PacketEvent
  std::uint8_t type;   ///< net::PacketType numeric value
  std::uint8_t ce;     ///< congestion-experienced bit at this point
  std::uint8_t retransmit;
};

// HERMES_POD_RECORD
/// Payload of a RecordKind::kQueue record.
struct QueuePayload {
  std::uint32_t backlog_bytes;
  std::uint32_t backlog_packets;
};

// HERMES_POD_RECORD
/// Payload of a RecordKind::kFault record. `action` mirrors
/// faults::FaultAction's numeric value; `onset` is 1 for a fault turning
/// on (blackhole install, link cut, drop-rate set) and 0 for recovery.
struct FaultPayload {
  std::int32_t switch_id;  ///< -1 for link-targeted events
  std::int16_t leaf;
  std::int16_t spine;
  std::uint8_t action;
  std::uint8_t onset;
};

// HERMES_POD_RECORD
/// Payload of a RecordKind::kDecision record: Algorithm 2's inputs at the
/// moment of the decision. delta_rtt/delta_ecn are (current - chosen),
/// i.e. positive means the chosen path looked better; both are zero when
/// there was no current path (initial placement) or no reroute happened.
struct DecisionPayload {
  std::int64_t delta_rtt_ns;   ///< ΔRTT between current and chosen path
  std::uint64_t sent_bytes;    ///< S: flow bytes sent so far
  double rate_bps;             ///< R: the flow's sending rate estimate
  float delta_ecn;             ///< ΔECN fraction between current and chosen
  std::int16_t src_leaf;
  std::int16_t dst_leaf;
  std::int16_t from_path;      ///< local path index before (-1 = none)
  std::int16_t to_path;        ///< local path index chosen (-1 = none)
  std::uint8_t kind;           ///< DecisionKind
  std::uint8_t from_cond;      ///< path condition of from_path (kPathCondNone if none)
  std::uint8_t to_cond;        ///< path condition of to_path (kPathCondNone if none)
  std::uint8_t pad;
};

// HERMES_POD_RECORD
/// One fixed-size flight-recorder record. Strictly POD: no pointers, no
/// heap-owning members — records are memcpy'd into the ring and dumped
/// raw to disk (trace format schema v1). The union payload is selected
/// by `kind`; `name` is a StringTable id locating the event (port name,
/// balancer name, fault target).
struct TraceRecord {
  std::uint64_t time_ns;
  std::uint64_t flow_id;
  std::uint32_t name;
  RecordKind kind;
  /// pad[0] carries the originating shard id (stamped by FlightRecorder;
  /// 0 in serial traces, so pre-sharding trace bytes are unchanged).
  /// pad[1..2] are zero.
  std::uint8_t pad[3];
  union {
    PacketPayload packet;
    QueuePayload queue;
    FaultPayload fault;
    DecisionPayload decision;
  } u;
};

static_assert(sizeof(TraceRecord) == 64, "trace format schema v1 pins 64-byte records");

/// Zeroed record (padding included, so dumped bytes are reproducible),
/// with the common header filled in.
[[nodiscard]] inline TraceRecord make_record(RecordKind kind, std::uint64_t time_ns,
                                             std::uint32_t name, std::uint64_t flow_id) {
  TraceRecord r;
  std::memset(&r, 0, sizeof r);
  r.time_ns = time_ns;
  r.flow_id = flow_id;
  r.name = name;
  r.kind = kind;
  return r;
}

}  // namespace hermes::obs
