#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace hermes::obs {

/// Log2-bucketed histogram for positive integer samples (latencies in
/// ns, latch lifetimes in us, bytes). 64 fixed buckets — bucket i holds
/// values whose highest set bit is i (bucket 0 additionally holds 0) —
/// so observe() is branch-light and never allocates.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  // HERMES_HOT
  void observe(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_ || count_ == 1) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket_count(int i) const { return counts_[i]; }

  /// Index of the highest non-empty bucket, or -1 when empty.
  [[nodiscard]] int highest_bucket() const;

  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    int b = 0;
    while (v >>= 1) ++b;
    return b;
  }

  /// Inclusive upper bound of bucket i (2^(i+1) - 1, saturating).
  [[nodiscard]] static std::uint64_t bucket_upper(int i);

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Registry of named metrics owned by a Scenario (never global: parallel
/// sweeps each get their own). Counters and gauges are *pull-model*: the
/// registering module hands over a closure reading its existing counter
/// (PortStats, ProbeStats, EventQueue::events_processed, ...) so the hot
/// path pays nothing it was not already paying. Histograms are push —
/// components call observe() on a pointer obtained at setup time.
///
/// Storage is std::map keyed by name, so snapshots iterate in sorted
/// name order and are byte-stable across runs at a fixed seed — the
/// determinism contract extends to telemetry output.
class MetricsRegistry {
 public:
  // hermeslint:allow(hotpath.hot-file-member) pull-model readers, invoked once per
  // snapshot/report — registration and reads are both off the per-packet path
  using CounterFn = std::function<std::uint64_t()>;
  // hermeslint:allow(hotpath.hot-file-member) same pull-model contract as CounterFn
  using GaugeFn = std::function<double()>;

  /// Register a pull counter. Re-registering a name replaces the reader.
  void counter_fn(std::string_view name, CounterFn fn);

  /// Register a pull gauge.
  void gauge_fn(std::string_view name, GaugeFn fn);

  /// Find-or-create a histogram. The reference is stable for the
  /// registry's lifetime (std::map node stability).
  Histogram& histogram(std::string_view name);

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One "name value" line per metric, sorted by name within each of
  /// the three sections. Byte-stable at a fixed seed.
  [[nodiscard]] std::string snapshot_text() const;

  /// Same data as a JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,buckets:[[upper,n],...]}}}.
  /// Suitable for embedding in bench JSON output.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  std::map<std::string, CounterFn, std::less<>> counters_;
  std::map<std::string, GaugeFn, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace hermes::obs
