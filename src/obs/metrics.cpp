#include "hermes/obs/metrics.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <utility>

namespace hermes::obs {

int Histogram::highest_bucket() const {
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (counts_[i] != 0) return i;
  }
  return -1;
}

std::uint64_t Histogram::bucket_upper(int i) {
  if (i >= 63) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << (i + 1)) - 1;
}

void MetricsRegistry::counter_fn(std::string_view name, CounterFn fn) {
  counters_.insert_or_assign(std::string(name), std::move(fn));
}

void MetricsRegistry::gauge_fn(std::string_view name, GaugeFn fn) {
  gauges_.insert_or_assign(std::string(name), std::move(fn));
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n) < sizeof buf
                                 ? static_cast<std::size_t>(n)
                                 : sizeof buf - 1);
}

}  // namespace

std::string MetricsRegistry::snapshot_text() const {
  std::string out;
  for (const auto& [name, fn] : counters_) {
    append_fmt(out, "%s %" PRIu64 "\n", name.c_str(), fn());
  }
  for (const auto& [name, fn] : gauges_) {
    append_fmt(out, "%s %.6g\n", name.c_str(), fn());
  }
  for (const auto& [name, h] : histograms_) {
    append_fmt(out, "%s count=%" PRIu64 " sum=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64 "\n",
               name.c_str(), h.count(), h.sum(), h.min(), h.max());
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, fn] : counters_) {
    append_fmt(out, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(), fn());
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges_) {
    append_fmt(out, "%s\"%s\":%.6g", first ? "" : ",", name.c_str(), fn());
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    append_fmt(out, "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                    ",\"max\":%" PRIu64 ",\"buckets\":[",
               first ? "" : ",", name.c_str(), h.count(), h.sum(), h.min(), h.max());
    first = false;
    bool first_b = true;
    const int top = h.highest_bucket();
    for (int i = 0; i <= top; ++i) {
      if (h.bucket_count(i) == 0) continue;
      append_fmt(out, "%s[%" PRIu64 ",%" PRIu64 "]", first_b ? "" : ",", Histogram::bucket_upper(i),
                 h.bucket_count(i));
      first_b = false;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace hermes::obs
