#include "hermes/obs/trace_io.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace hermes::obs {

namespace {

// Trace format schema v2:
//   char[4]  magic "HTRC"
//   u32      version (2)
//   u32      record_size (64)
//   u32      name_count
//   u64      record_count
//   u64      overwritten
//   name_count × { u32 len; char[len] }   (ids 1..name_count in order)
//   record_count × TraceRecord            (raw little-endian structs)
//   char[4]  index magic "HIDX"           (footer, v2 only)
//   u32      flow_count
//   flow_count × { u64 flow_id; u64 begin; u64 count }   (ascending flow_id)
//   record_count × u32                    (flow-grouped record indices)
//
// v1 is the same file without the footer; the reader accepts both and
// rebuilds the index in memory for v1, so `hermestrace --flow/--diff`
// and any other per-flow query stay O(log n) regardless of schema.
constexpr char kMagic[4] = {'H', 'T', 'R', 'C'};
constexpr char kIndexMagic[4] = {'H', 'I', 'D', 'X'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kOldestReadable = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

bool put_u32(std::FILE* f, std::uint32_t v) { return std::fwrite(&v, sizeof v, 1, f) == 1; }
bool put_u64(std::FILE* f, std::uint64_t v) { return std::fwrite(&v, sizeof v, 1, f) == 1; }
bool get_u32(std::FILE* f, std::uint32_t& v) { return std::fread(&v, sizeof v, 1, f) == 1; }
bool get_u64(std::FILE* f, std::uint64_t& v) { return std::fread(&v, sizeof v, 1, f) == 1; }

bool fail(std::string* err, const char* why) {
  if (err != nullptr) *err = why;
  return false;
}

/// Bytes from the current position to end-of-file (0 on any seek error).
std::uint64_t bytes_remaining(std::FILE* f) {
  const long here = std::ftell(f);
  if (here < 0 || std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(f);
  std::fseek(f, here, SEEK_SET);
  return end > here ? static_cast<std::uint64_t>(end - here) : 0;
}

}  // namespace

const std::string& LoadedTrace::name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  if (id == 0 || id > names.size()) return kUnknown;
  return names[id - 1];
}

std::span<const std::uint32_t> LoadedTrace::flow_records(std::uint64_t flow_id) const {
  const auto it = std::lower_bound(
      flow_ranges.begin(), flow_ranges.end(), flow_id,
      [](const FlowRange& r, std::uint64_t id) { return r.flow_id < id; });
  if (it == flow_ranges.end() || it->flow_id != flow_id) return {};
  return std::span<const std::uint32_t>{flow_perm}.subspan(it->begin, it->count);
}

std::vector<std::uint64_t> LoadedTrace::flow_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(flow_ranges.size());
  for (const FlowRange& r : flow_ranges) ids.push_back(r.flow_id);
  return ids;
}

void build_flow_index(const std::vector<TraceRecord>& records,
                      std::vector<LoadedTrace::FlowRange>& ranges,
                      std::vector<std::uint32_t>& perm) {
  ranges.clear();
  perm.resize(records.size());
  std::iota(perm.begin(), perm.end(), 0u);
  // Stable: records are in append (chronological) order, so within each
  // flow the permutation stays time-ordered.
  std::stable_sort(perm.begin(), perm.end(), [&records](std::uint32_t a, std::uint32_t b) {
    return records[a].flow_id < records[b].flow_id;
  });
  for (std::size_t i = 0; i < perm.size();) {
    const std::uint64_t flow = records[perm[i]].flow_id;
    std::size_t j = i;
    while (j < perm.size() && records[perm[j]].flow_id == flow) ++j;
    ranges.push_back({flow, i, j - i});
    i = j;
  }
}

namespace {

bool write_records(const std::string& path, const StringTable& names,
                   const std::vector<TraceRecord>& records, std::uint64_t overwritten) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  std::FILE* fp = f.get();

  const std::uint32_t name_count = names.size();

  if (std::fwrite(kMagic, 1, 4, fp) != 4) return false;
  if (!put_u32(fp, kVersion) || !put_u32(fp, sizeof(TraceRecord)) || !put_u32(fp, name_count) ||
      !put_u64(fp, records.size()) || !put_u64(fp, overwritten)) {
    return false;
  }
  for (std::uint32_t id = 1; id <= name_count; ++id) {
    const std::string& s = names.name(id);
    if (!put_u32(fp, static_cast<std::uint32_t>(s.size()))) return false;
    if (!s.empty() && std::fwrite(s.data(), 1, s.size(), fp) != s.size()) return false;
  }
  if (!records.empty() &&
      std::fwrite(records.data(), sizeof(TraceRecord), records.size(), fp) != records.size()) {
    return false;
  }

  // Flow-index footer: built once at dump time so readers of multi-GB
  // traces answer per-flow queries without a full scan.
  std::vector<LoadedTrace::FlowRange> ranges;
  std::vector<std::uint32_t> perm;
  build_flow_index(records, ranges, perm);
  if (std::fwrite(kIndexMagic, 1, 4, fp) != 4) return false;
  if (!put_u32(fp, static_cast<std::uint32_t>(ranges.size()))) return false;
  for (const LoadedTrace::FlowRange& r : ranges) {
    if (!put_u64(fp, r.flow_id) || !put_u64(fp, r.begin) || !put_u64(fp, r.count)) return false;
  }
  if (!perm.empty() &&
      std::fwrite(perm.data(), sizeof(std::uint32_t), perm.size(), fp) != perm.size()) {
    return false;
  }
  return std::fflush(fp) == 0;
}

}  // namespace

bool write_trace(const std::string& path, const FlightRecorder& rec) {
  return write_records(path, rec.names(), rec.snapshot(), rec.overwritten());
}

bool write_merged_trace(const std::string& path,
                        const std::vector<const FlightRecorder*>& shards) {
  if (shards.empty()) return false;
  std::vector<TraceRecord> records;
  std::uint64_t overwritten = 0;
  std::size_t total = 0;
  for (const FlightRecorder* rec : shards) {
    // One shared table is what makes concatenation meaningful: the same
    // name id must resolve identically in every shard's records.
    if (&rec->names() != &shards.front()->names()) return false;
    total += rec->size();
  }
  records.reserve(total);
  for (const FlightRecorder* rec : shards) {
    const std::vector<TraceRecord> snap = rec->snapshot();
    records.insert(records.end(), snap.begin(), snap.end());
    overwritten += rec->overwritten();
  }
  // (time, shard) is the merged trace's canonical order: within a shard
  // records are already chronological (stable sort keeps that), and
  // cross-shard ties break on the shard id stamped in pad[0] — both
  // independent of thread count, so merged traces are byte-comparable.
  std::stable_sort(records.begin(), records.end(), [](const TraceRecord& a, const TraceRecord& b) {
    if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
    return a.pad[0] < b.pad[0];
  });
  return write_records(path, shards.front()->names(), records, overwritten);
}

bool read_trace(const std::string& path, LoadedTrace& out, std::string* err) {
  out = LoadedTrace{};
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) return fail(err, "cannot open file");
  std::FILE* fp = f.get();

  char magic[4];
  if (std::fread(magic, 1, 4, fp) != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return fail(err, "not a hermes trace (bad magic)");
  }
  std::uint32_t version = 0;
  std::uint32_t record_size = 0;
  std::uint32_t name_count = 0;
  std::uint64_t record_count = 0;
  if (!get_u32(fp, version) || !get_u32(fp, record_size) || !get_u32(fp, name_count) ||
      !get_u64(fp, record_count) || !get_u64(fp, out.overwritten)) {
    return fail(err, "truncated header");
  }
  if (version < kOldestReadable || version > kVersion) {
    return fail(err, "unsupported trace version");
  }
  if (record_size != sizeof(TraceRecord)) return fail(err, "record size mismatch");

  // Sanity-check declared counts against the actual file size before
  // resizing anything: a corrupt header must produce a clean error, not
  // a multi-gigabyte allocation followed by partial output.
  const std::uint64_t remaining = bytes_remaining(fp);
  if (name_count > remaining / sizeof(std::uint32_t) ||
      record_count > remaining / sizeof(TraceRecord)) {
    return fail(err, "declared sizes exceed file size (corrupt header)");
  }

  out.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::uint32_t len = 0;
    if (!get_u32(fp, len) || len > (1u << 20)) return fail(err, "truncated string table");
    std::string s(len, '\0');
    if (len != 0 && std::fread(s.data(), 1, len, fp) != len) {
      return fail(err, "truncated string table");
    }
    out.names.push_back(std::move(s));
  }
  out.records.resize(record_count);
  if (record_count != 0 &&
      std::fread(out.records.data(), sizeof(TraceRecord), record_count, fp) != record_count) {
    out = LoadedTrace{};
    return fail(err, "truncated record section (short record tail)");
  }

  if (version < 2) {
    // v1 has no footer; rebuild the index so every caller sees one.
    build_flow_index(out.records, out.flow_ranges, out.flow_perm);
    return true;
  }

  char idx_magic[4];
  if (std::fread(idx_magic, 1, 4, fp) != 4 || std::memcmp(idx_magic, kIndexMagic, 4) != 0) {
    out = LoadedTrace{};
    return fail(err, "missing flow-index footer");
  }
  std::uint32_t flow_count = 0;
  if (!get_u32(fp, flow_count) || flow_count > record_count) {
    out = LoadedTrace{};
    return fail(err, "corrupt flow index");
  }
  out.flow_ranges.resize(flow_count);
  std::uint64_t total = 0;
  std::uint64_t prev_flow = 0;
  for (std::uint32_t i = 0; i < flow_count; ++i) {
    LoadedTrace::FlowRange& r = out.flow_ranges[i];
    if (!get_u64(fp, r.flow_id) || !get_u64(fp, r.begin) || !get_u64(fp, r.count) ||
        r.begin != total || r.count == 0 || r.count > record_count - total ||
        (i != 0 && r.flow_id <= prev_flow)) {
      out = LoadedTrace{};
      return fail(err, "corrupt flow index");
    }
    prev_flow = r.flow_id;
    total += r.count;
  }
  if (total != record_count) {
    out = LoadedTrace{};
    return fail(err, "corrupt flow index");
  }
  out.flow_perm.resize(record_count);
  if (record_count != 0 && std::fread(out.flow_perm.data(), sizeof(std::uint32_t), record_count,
                                      fp) != record_count) {
    out = LoadedTrace{};
    return fail(err, "truncated flow index");
  }
  for (const std::uint32_t idx : out.flow_perm) {
    if (idx >= record_count) {
      out = LoadedTrace{};
      return fail(err, "corrupt flow index");
    }
  }
  return true;
}

}  // namespace hermes::obs
