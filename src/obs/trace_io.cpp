#include "hermes/obs/trace_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hermes::obs {

namespace {

// Trace format schema v1:
//   char[4]  magic "HTRC"
//   u32      version (1)
//   u32      record_size (64)
//   u32      name_count
//   u64      record_count
//   u64      overwritten
//   name_count × { u32 len; char[len] }   (ids 1..name_count in order)
//   record_count × TraceRecord            (raw little-endian structs)
constexpr char kMagic[4] = {'H', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

bool put_u32(std::FILE* f, std::uint32_t v) { return std::fwrite(&v, sizeof v, 1, f) == 1; }
bool put_u64(std::FILE* f, std::uint64_t v) { return std::fwrite(&v, sizeof v, 1, f) == 1; }
bool get_u32(std::FILE* f, std::uint32_t& v) { return std::fread(&v, sizeof v, 1, f) == 1; }
bool get_u64(std::FILE* f, std::uint64_t& v) { return std::fread(&v, sizeof v, 1, f) == 1; }

bool fail(std::string* err, const char* why) {
  if (err != nullptr) *err = why;
  return false;
}

}  // namespace

const std::string& LoadedTrace::name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  if (id == 0 || id > names.size()) return kUnknown;
  return names[id - 1];
}

bool write_trace(const std::string& path, const FlightRecorder& rec) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  std::FILE* fp = f.get();

  const std::uint32_t name_count = rec.names().size();
  const std::vector<TraceRecord> records = rec.snapshot();

  if (std::fwrite(kMagic, 1, 4, fp) != 4) return false;
  if (!put_u32(fp, kVersion) || !put_u32(fp, sizeof(TraceRecord)) || !put_u32(fp, name_count) ||
      !put_u64(fp, records.size()) || !put_u64(fp, rec.overwritten())) {
    return false;
  }
  for (std::uint32_t id = 1; id <= name_count; ++id) {
    const std::string& s = rec.names().name(id);
    if (!put_u32(fp, static_cast<std::uint32_t>(s.size()))) return false;
    if (!s.empty() && std::fwrite(s.data(), 1, s.size(), fp) != s.size()) return false;
  }
  if (!records.empty() &&
      std::fwrite(records.data(), sizeof(TraceRecord), records.size(), fp) != records.size()) {
    return false;
  }
  return std::fflush(fp) == 0;
}

bool read_trace(const std::string& path, LoadedTrace& out, std::string* err) {
  out = LoadedTrace{};
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) return fail(err, "cannot open file");
  std::FILE* fp = f.get();

  char magic[4];
  if (std::fread(magic, 1, 4, fp) != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return fail(err, "not a hermes trace (bad magic)");
  }
  std::uint32_t version = 0;
  std::uint32_t record_size = 0;
  std::uint32_t name_count = 0;
  std::uint64_t record_count = 0;
  if (!get_u32(fp, version) || !get_u32(fp, record_size) || !get_u32(fp, name_count) ||
      !get_u64(fp, record_count) || !get_u64(fp, out.overwritten)) {
    return fail(err, "truncated header");
  }
  if (version != kVersion) return fail(err, "unsupported trace version");
  if (record_size != sizeof(TraceRecord)) return fail(err, "record size mismatch");

  out.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::uint32_t len = 0;
    if (!get_u32(fp, len) || len > (1u << 20)) return fail(err, "truncated string table");
    std::string s(len, '\0');
    if (len != 0 && std::fread(s.data(), 1, len, fp) != len) {
      return fail(err, "truncated string table");
    }
    out.names.push_back(std::move(s));
  }
  out.records.resize(record_count);
  if (record_count != 0 &&
      std::fread(out.records.data(), sizeof(TraceRecord), record_count, fp) != record_count) {
    return fail(err, "truncated record section");
  }
  return true;
}

}  // namespace hermes::obs
