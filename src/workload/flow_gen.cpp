#include "hermes/workload/flow_gen.hpp"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hermes::workload {

std::vector<transport::FlowSpec> generate_poisson_traffic(const net::Fabric& topo,
                                                          const SizeDist& dist,
                                                          const TrafficConfig& cfg) {
  if (cfg.load <= 0) throw std::invalid_argument("load must be positive");
  if (topo.num_leaves() < 2 && cfg.inter_rack_only)
    throw std::invalid_argument("inter-rack traffic needs at least two leaves");

  sim::Rng rng{cfg.seed};
  const double lambda = cfg.load * topo.bisection_bps() / 8.0 / dist.mean_bytes();
  const double mean_gap_sec = 1.0 / lambda;

  std::vector<transport::FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(cfg.num_flows));
  double t = 0;
  const int n = topo.num_hosts();
  for (int i = 0; i < cfg.num_flows; ++i) {
    t += rng.exponential(mean_gap_sec);
    transport::FlowSpec f;
    f.id = static_cast<std::uint64_t>(i) + 1;
    f.start = sim::SimTime::from_seconds(t);
    f.size = dist.sample(rng);
    f.src = static_cast<std::int32_t>(rng.next(static_cast<std::uint64_t>(n)));
    do {
      f.dst = static_cast<std::int32_t>(rng.next(static_cast<std::uint64_t>(n)));
    } while (f.dst == f.src ||
             (cfg.inter_rack_only && topo.leaf_of(f.dst) == topo.leaf_of(f.src)));
    flows.push_back(f);
  }
  return flows;
}

}  // namespace hermes::workload
