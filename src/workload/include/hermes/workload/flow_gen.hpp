#pragma once

#include <cstdint>
#include <vector>

#include "hermes/net/fabric.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/transport/flow.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::workload {

/// Open-loop traffic generation (§5.1): flows between random senders and
/// receivers under *different* leaf switches arrive as a Poisson process
/// whose rate hits a target fraction of the fabric's bisection capacity:
///
///   lambda = load * bisection_bytes_per_sec / mean_flow_size.
///
/// The full arrival list is materialized up front so every compared
/// scheme sees byte-identical traffic for a given seed.
struct TrafficConfig {
  double load = 0.6;         ///< fraction of bisection capacity
  int num_flows = 1000;      ///< arrivals to generate
  std::uint64_t seed = 1;
  bool inter_rack_only = true;
};

[[nodiscard]] std::vector<transport::FlowSpec> generate_poisson_traffic(
    const net::Fabric& topo, const SizeDist& dist, const TrafficConfig& cfg);

}  // namespace hermes::workload
