#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hermes/sim/rng.hpp"

namespace hermes::workload {

/// Empirical flow-size distribution given as a piecewise-linear CDF
/// (size in bytes, cumulative probability). Sampling uses inverse
/// transform with linear interpolation inside each segment.
class SizeDist {
 public:
  using Point = std::pair<double, double>;  // (bytes, cdf)

  SizeDist(std::string name, std::vector<Point> points);

  /// Draw one flow size in bytes.
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;
  /// Analytic mean of the distribution in bytes.
  [[nodiscard]] double mean_bytes() const { return mean_; }
  /// CDF value at `bytes` (for reproducing Fig. 7).
  [[nodiscard]] double cdf(double bytes) const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// The web-search workload (Alizadeh et al., DCTCP): many small flows,
  /// moderate heavy tail, mean ~1.7MB.
  [[nodiscard]] static SizeDist web_search();
  /// The data-mining workload (Greenberg et al., VL2): extremely skewed —
  /// ~80% of flows under 10KB while ~95% of bytes live in the few flows
  /// larger than 35MB. Mean ~12.6MB.
  [[nodiscard]] static SizeDist data_mining();
  /// A size-scaled copy (same shape, sizes multiplied by `factor`); used
  /// to shrink benchmark runtimes while preserving heavy-tailed shape.
  [[nodiscard]] SizeDist scaled(double factor) const;

 private:
  std::string name_;
  std::vector<Point> points_;
  double mean_ = 0;
};

}  // namespace hermes::workload
