#include "hermes/workload/size_dist.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hermes::workload {

SizeDist::SizeDist(std::string name, std::vector<Point> points)
    : name_{std::move(name)}, points_{std::move(points)} {
  if (points_.size() < 2) throw std::invalid_argument("CDF needs at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first < points_[i - 1].first || points_[i].second < points_[i - 1].second)
      throw std::invalid_argument("CDF must be nondecreasing");
  }
  if (std::abs(points_.back().second - 1.0) > 1e-9)
    throw std::invalid_argument("CDF must end at probability 1");
  // Mean of the piecewise-linear distribution: each segment contributes
  // its probability mass times the segment midpoint.
  mean_ = points_.front().first * points_.front().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].second - points_[i - 1].second;
    mean_ += mass * 0.5 * (points_[i].first + points_[i - 1].first);
  }
}

std::uint64_t SizeDist::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const Point& p, double v) { return p.second < v; });
  if (it == points_.begin()) return static_cast<std::uint64_t>(std::max(1.0, it->first));
  if (it == points_.end()) return static_cast<std::uint64_t>(points_.back().first);
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.second - lo.second;
  const double frac = span > 0 ? (u - lo.second) / span : 1.0;
  const double bytes = lo.first + frac * (hi.first - lo.first);
  return static_cast<std::uint64_t>(std::max(1.0, bytes));
}

double SizeDist::cdf(double bytes) const {
  if (bytes <= points_.front().first) return points_.front().second;
  if (bytes >= points_.back().first) return 1.0;
  auto it = std::lower_bound(points_.begin(), points_.end(), bytes,
                             [](const Point& p, double v) { return p.first < v; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.first - lo.first;
  const double frac = span > 0 ? (bytes - lo.first) / span : 1.0;
  return lo.second + frac * (hi.second - lo.second);
}

SizeDist SizeDist::web_search() {
  // Approximation of the web-search (DCTCP) flow size CDF, Fig. 7a.
  return SizeDist{"web-search",
                  {{0, 0.0},
                   {10e3, 0.15},
                   {20e3, 0.20},
                   {30e3, 0.30},
                   {50e3, 0.40},
                   {80e3, 0.53},
                   {200e3, 0.60},
                   {1e6, 0.70},
                   {2e6, 0.80},
                   {5e6, 0.90},
                   {10e6, 0.97},
                   {30e6, 1.00}}};
}

SizeDist SizeDist::data_mining() {
  // Approximation of the data-mining (VL2) flow size CDF, Fig. 7b.
  return SizeDist{"data-mining",
                  {{0, 0.0},
                   {180, 0.10},
                   {250, 0.20},
                   {560, 0.30},
                   {900, 0.40},
                   {1100, 0.50},
                   {1870, 0.60},
                   {3160, 0.70},
                   {10e3, 0.80},
                   {400e3, 0.90},
                   {3.16e6, 0.95},
                   {100e6, 0.98},
                   {1e9, 1.00}}};
}

SizeDist SizeDist::scaled(double factor) const {
  std::vector<Point> pts = points_;
  for (auto& p : pts) p.first *= factor;
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, "-x%.2g", factor);
  return SizeDist{name_ + suffix, std::move(pts)};
}

}  // namespace hermes::workload
