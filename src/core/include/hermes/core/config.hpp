#pragma once

#include <cstdint>

#include "hermes/net/fabric.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::core {

/// Hermes parameters (Table 4) with the paper's recommended settings
/// (§3.3). `defaults_for(topology)` derives the RTT thresholds from the
/// fabric's base RTT and one-hop delay exactly as the paper prescribes:
///   T_RTT_low  = base RTT + 20..40us          (default +30us)
///   T_RTT_high = base RTT + 1.5 x one-hop delay
///   Delta_RTT  = one-hop delay
/// where one-hop delay = ECN marking threshold / link capacity.
struct HermesConfig {
  // Congestion sensing thresholds.
  double t_ecn = 0.40;                   ///< ECN fraction of a congested path
  sim::SimTime t_rtt_low{};              ///< below: lightly loaded
  sim::SimTime t_rtt_high{};             ///< above (with ECN): congested
  // "Notably better" margins for cautious rerouting.
  sim::SimTime delta_rtt{};
  double delta_ecn = 0.05;
  // Flow-status gates for cautious rerouting.
  double rate_threshold_frac = 0.30;     ///< R, fraction of host link rate
  std::uint64_t sent_threshold_bytes = 600 * 1024;  ///< S

  // Active probing.
  sim::SimTime probe_interval = sim::usec(500);

  // Failure sensing.
  std::uint32_t blackhole_timeouts = 3;  ///< timeouts w/o any ACK => blackhole
  double retx_threshold = 0.01;          ///< f_retransmission limit
  sim::SimTime retx_epoch = sim::msec(10);  ///< tau
  /// A random-drop latch expires after this long and must be re-confirmed
  /// by fresh evidence. A truly failing switch re-latches within one tau;
  /// a congestion-burst false positive self-heals. 0 = latch forever.
  sim::SimTime failure_expiry = sim::msec(100);

  /// Minimum spacing between congestion-triggered reroutes of one flow.
  /// Guards against path bouncing when the congestion a flow senses is
  /// actually at its destination host (every alternative looks "notably
  /// better" through rack-level probe state but is not). Failure- and
  /// timeout-triggered switches are never delayed.
  sim::SimTime reroute_min_gap = sim::msec(2);

  // Signal smoothing.
  double rtt_ewma_gain = 0.5;
  double ecn_ewma_gain = 1.0 / 16.0;

  // Feature toggles (ablations of Fig. 18; §5.4 TCP mode).
  bool probing_enabled = true;
  bool rerouting_enabled = true;   ///< reroute ongoing flows on congestion
  bool failure_sensing = true;
  bool use_ecn = true;             ///< false: sense with RTT only (plain TCP)

  /// Recommended settings for a concrete fabric.
  [[nodiscard]] static HermesConfig defaults_for(const net::Fabric& topo) {
    HermesConfig c;
    const auto base = topo.base_rtt();
    const auto hop = topo.one_hop_delay();
    c.t_rtt_low = base + sim::usec(30);
    c.t_rtt_high = base + sim::SimTime::nanoseconds(hop.ns() * 3 / 2);
    c.delta_rtt = hop;
    return c;
  }
};

}  // namespace hermes::core
