#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hermes/core/config.hpp"
#include "hermes/core/path_state.hpp"
#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::core {

/// Counters for the probing/visibility analysis (Table 6).
struct ProbeStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t probe_bytes = 0;
};

/// Always-on counters over Algorithm 2's decision branches and the
/// blackhole detector's latch lifecycle (exported as "lb.*" metrics).
struct DecisionStats {
  std::uint64_t initial_placements = 0;
  std::uint64_t timeout_escapes = 0;
  std::uint64_t failure_escapes = 0;
  std::uint64_t congestion_reroutes = 0;
  std::uint64_t blackhole_latches = 0;
  std::uint64_t latch_expiries = 0;
};

/// Hermes: comprehensive sensing + timely yet cautious rerouting (§3).
///
/// State is kept per ordered rack pair, matching the paper's deployment
/// model where one hypervisor per rack acts as the probe agent and shares
/// path information with every hypervisor under the same rack (§3.1.3).
/// Data-plane signals (ACK RTT/ECN, timeouts, retransmissions) and probe
/// replies feed the same per-pair PathState tables.
///
/// Blackholes are detected per (source host, destination host) pair
/// (§3.1.2), because a blackhole deterministically drops only packets
/// matching certain header patterns; silent random drops are detected per
/// path via the retransmission-rate epoch detector in PathState.
class HermesLb final : public lb::LoadBalancer {
 public:
  HermesLb(sim::Simulator& simulator, net::Fabric& topo, HermesConfig config);

  // --- lb::LoadBalancer -------------------------------------------------
  int select_path(lb::FlowCtx& flow, const net::Packet& pkt) override;
  void on_ack(lb::FlowCtx& flow, const net::Packet& ack) override;
  void on_timeout(lb::FlowCtx& flow) override;
  void on_retransmit(lb::FlowCtx& flow, int path_id) override;
  [[nodiscard]] std::string_view name() const override { return "hermes"; }

  // --- probing ----------------------------------------------------------
  /// Turn on active probing. `raw_send(src_host, packet)` must transmit
  /// the packet from that host's NIC; the harness wires it to the rack
  /// agents' HostStacks. Probing runs every config.probe_interval.
  void enable_probing(std::function<void(int src_host, net::Packet)> raw_send);
  /// Deliver a probe reply arriving at a rack agent.
  void on_probe_reply(const net::Packet& reply);
  /// Restrict probing to these source leaves (default: all). The sharded
  /// harness runs one HermesLb per shard and filters each instance to the
  /// leaves whose rack agents that shard owns, so probes originate — and
  /// their replies return — strictly shard-locally.
  void set_probe_sources(std::vector<int> leaves) { probe_sources_ = std::move(leaves); }
  [[nodiscard]] const ProbeStats& probe_stats() const { return probe_stats_; }

  // --- observability ----------------------------------------------------
  /// Attach (null detaches) the scenario's flight recorder: every
  /// Algorithm 2 decision and blackhole-latch transition is appended as a
  /// kDecision record carrying the decision inputs (ΔRTT, ΔECN, S, R) and
  /// the path-condition transition.
  void set_recorder(obs::FlightRecorder* rec) {
    rec_ = rec;
    name_id_ = rec != nullptr ? rec->intern("hermes") : 0;
  }
  /// Register "lb.*" decision/probe counters and the latch-lifetime
  /// histogram with the scenario's registry.
  void register_metrics(obs::MetricsRegistry& reg);
  [[nodiscard]] const DecisionStats& decision_stats() const { return decision_stats_; }

  // --- introspection (tests, traces, benches) ---------------------------
  [[nodiscard]] const HermesConfig& config() const { return config_; }
  [[nodiscard]] PathState& path_state(int src_leaf, int dst_leaf, int local_index);
  [[nodiscard]] PathType path_type(int src_leaf, int dst_leaf, int local_index);
  [[nodiscard]] bool blackholed(std::int32_t src_host, std::int32_t dst_host,
                                int local_index) const;
  /// Number of distinct paths with at least one sample for a rack pair
  /// (the "visibility" a sender has, Table 6).
  [[nodiscard]] int sampled_paths(int src_leaf, int dst_leaf);

 private:
  /// Timeout/ACK bookkeeping per (src,dst,path) feeding the blackhole
  /// detector (Table 3's per-path n_timeout, kept per host pair since a
  /// blackhole matches specific header patterns). Aggregated across
  /// flows: one flow reroutes away after a single timeout, but the
  /// pair's traffic keeps revisiting the path and the count accrues.
  /// The latch heals the same way PathState's random-drop latch does:
  /// it expires after failure_expiry without fresh evidence, and each
  /// re-confirmation doubles the expiry (streak capped at 8 => 128x), so
  /// a transient blackhole releases the path soon after it clears.
  struct HoleTrack {
    std::uint32_t timeouts = 0;
    bool acked = false;
    bool latched = false;
    sim::SimTime latched_at{};
    std::uint32_t streak = 0;
  };
  struct PairState {
    std::vector<PathState> paths;
    int best_idx = -1;  ///< previously observed best path (probed extra)
    std::unordered_map<std::uint64_t, HoleTrack> hole_track;
  };

  [[nodiscard]] static std::uint64_t hole_key(std::int32_t src, std::int32_t dst, int idx) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 16) |
           static_cast<std::uint32_t>(idx);
  }

  PairState& pair(int src_leaf, int dst_leaf);
  /// Is the hole latch live (expiring it in place when stale)? `flow` and
  /// `local_idx` locate the expiry for the decision trace / metrics.
  [[nodiscard]] bool hole_active(HoleTrack& track, sim::SimTime now, const lb::FlowCtx* flow,
                                 int local_idx);
  /// Algorithm 2 lines 3-12: initial placement / failure escape.
  int pick_fresh(PairState& ps, const std::vector<net::FabricPath>& paths,
                 const lb::FlowCtx& flow);
  /// Algorithm 2 lines 14-23: cautious reroute off a congested path.
  int pick_notably_better(PairState& ps, const std::vector<net::FabricPath>& paths,
                          int cur_local, const lb::FlowCtx& flow);
  /// Argmin r_p over paths of type `wanted` (random among near-ties).
  int least_rate_path(PairState& ps, const std::vector<net::FabricPath>& paths,
                      const lb::FlowCtx& flow, PathType wanted, int exclude_local,
                      const std::function<bool(const PathState&)>* extra_filter);
  [[nodiscard]] bool failed_for_flow(PairState& ps, const lb::FlowCtx& flow, int local_idx);
  void probe_tick();
  void send_probe(int src_leaf, int dst_leaf, int local_idx);
  /// Append a kDecision record (no-op when no recorder is attached).
  void record_decision(obs::DecisionKind kind, const lb::FlowCtx& flow, PairState& ps,
                       int from_local, int to_local, std::int64_t delta_rtt_ns, float delta_ecn,
                       sim::SimTime now);

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  HermesConfig config_;
  sim::Rng rng_;
  int num_leaves_;
  std::vector<PairState> pairs_;

  std::function<void(int, net::Packet)> raw_send_;
  std::vector<int> probe_sources_;  ///< empty = probe from every leaf
  ProbeStats probe_stats_;
  std::uint64_t next_probe_id_ = 1;

  DecisionStats decision_stats_;
  obs::FlightRecorder* rec_ = nullptr;   ///< null when observability is off
  std::uint32_t name_id_ = 0;            ///< interned "hermes", valid while rec_ set
  obs::Histogram* latch_hist_ = nullptr; ///< latch lifetimes (us), null until registered
};

}  // namespace hermes::core
