#include "hermes/core/hermes_lb.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "hermes/obs/metrics.hpp"
#include "hermes/obs/records.hpp"

namespace hermes::core {

HermesLb::HermesLb(sim::Simulator& simulator, net::Fabric& topo, HermesConfig config)
    : simulator_{simulator},
      topo_{topo},
      config_{config},
      rng_{simulator.rng_stream(0x4E14E5)},
      num_leaves_{topo.num_leaves()} {
  pairs_.resize(static_cast<std::size_t>(num_leaves_) * num_leaves_);
}

HermesLb::PairState& HermesLb::pair(int src_leaf, int dst_leaf) {
  PairState& ps = pairs_[static_cast<std::size_t>(src_leaf) * num_leaves_ + dst_leaf];
  const auto n = topo_.paths_between_leaves(src_leaf, dst_leaf).size();
  if (ps.paths.size() < n) ps.paths.resize(n);
  return ps;
}

PathState& HermesLb::path_state(int src_leaf, int dst_leaf, int local_index) {
  return pair(src_leaf, dst_leaf).paths[local_index];
}

PathType HermesLb::path_type(int src_leaf, int dst_leaf, int local_index) {
  return pair(src_leaf, dst_leaf).paths[local_index].characterize(config_);
}

bool HermesLb::hole_active(HoleTrack& track, sim::SimTime now, const lb::FlowCtx* flow,
                           int local_idx) {
  if (track.latched && config_.failure_expiry > sim::SimTime::zero()) {
    const auto expiry = sim::SimTime::nanoseconds(
        config_.failure_expiry.ns() << (track.streak > 0 ? track.streak - 1 : 0));
    if (now - track.latched_at > expiry) {
      // Heal: the detector must re-accumulate blackhole_timeouts fresh
      // timeouts to re-latch; the streak is kept so a genuinely broken
      // path re-latches with a doubled expiry (up to 128x).
      track.latched = false;
      track.timeouts = 0;
      ++decision_stats_.latch_expiries;
      if (latch_hist_ != nullptr) {
        latch_hist_->observe(static_cast<std::uint64_t>((now - track.latched_at).ns() / 1000));
      }
      if (rec_ != nullptr && flow != nullptr) [[unlikely]] {
        PairState& ps = pair(flow->src_leaf, flow->dst_leaf);
        record_decision(obs::DecisionKind::kLatchExpire, *flow, ps, local_idx, -1, 0, 0.0F, now);
      }
    }
  }
  return track.latched;
}

bool HermesLb::blackholed(std::int32_t src_host, std::int32_t dst_host, int local_index) const {
  const int a = topo_.leaf_of(src_host);
  const int b = topo_.leaf_of(dst_host);
  const PairState& ps = pairs_[static_cast<std::size_t>(a) * num_leaves_ + b];
  const auto it = ps.hole_track.find(hole_key(src_host, dst_host, local_index));
  if (it == ps.hole_track.end() || !it->second.latched) return false;
  // Same expiry rule as hole_active, evaluated without mutating (const
  // introspection must not disturb detector state).
  if (config_.failure_expiry > sim::SimTime::zero()) {
    const HoleTrack& t = it->second;
    const auto expiry = sim::SimTime::nanoseconds(
        config_.failure_expiry.ns() << (t.streak > 0 ? t.streak - 1 : 0));
    if (simulator_.now() - t.latched_at > expiry) return false;
  }
  return true;
}

int HermesLb::sampled_paths(int src_leaf, int dst_leaf) {
  PairState& ps = pair(src_leaf, dst_leaf);
  int n = 0;
  for (const auto& p : ps.paths)
    if (p.has_sample()) ++n;
  return n;
}

bool HermesLb::failed_for_flow(PairState& ps, const lb::FlowCtx& flow, int local_idx) {
  if (ps.paths[local_idx].failed_active(simulator_.now(), config_)) return true;
  const auto it = ps.hole_track.find(hole_key(flow.src, flow.dst, local_idx));
  if (it == ps.hole_track.end()) return false;
  return hole_active(it->second, simulator_.now(), &flow, local_idx);
}

int HermesLb::pick_fresh(PairState& ps, const std::vector<net::FabricPath>& paths,
                         const lb::FlowCtx& flow) {
  // Lines 4-6: good paths, least local sending rate r_p first.
  // Lines 8-10: otherwise gray paths the same way. Near-equal rates are
  // tie-broken randomly so concurrent senders do not herd onto one path.
  for (PathType wanted : {PathType::kGood, PathType::kGray}) {
    const int best = least_rate_path(ps, paths, flow, wanted, -1, nullptr);
    if (best >= 0) return best;
  }
  // Line 12: a random path with no failure.
  std::vector<int> alive;
  alive.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i)
    if (!failed_for_flow(ps, flow, static_cast<int>(i))) alive.push_back(static_cast<int>(i));
  if (!alive.empty()) return alive[rng_.next(alive.size())];
  // Everything looks failed; we must still transmit somewhere.
  return static_cast<int>(rng_.next(paths.size()));
}

int HermesLb::pick_notably_better(PairState& ps, const std::vector<net::FabricPath>& paths,
                                  int cur_local, const lb::FlowCtx& flow) {
  const PathState& cur = ps.paths[cur_local];
  // hermeslint:allow(hotpath.hot-file-member) built once per reroute decision (flowlet
  // granularity), never per packet; the pointer-parameter contract below needs a type
  const std::function<bool(const PathState&)> notably_better = [&](const PathState& cand) {
    if (!cand.has_sample()) return false;
    if (cur.rtt() - cand.rtt() <= config_.delta_rtt) return false;
    if (config_.use_ecn && cur.ecn_fraction() - cand.ecn_fraction() <= config_.delta_ecn)
      return false;
    return true;
  };
  // Lines 15-21: good paths notably better than the current one, then gray.
  for (PathType wanted : {PathType::kGood, PathType::kGray}) {
    const int best = least_rate_path(ps, paths, flow, wanted, cur_local, &notably_better);
    if (best >= 0) return best;
  }
  return -1;  // line 23: do not reroute
}

int HermesLb::least_rate_path(PairState& ps, const std::vector<net::FabricPath>& paths,
                              const lb::FlowCtx& flow, PathType wanted, int exclude_local,
                              const std::function<bool(const PathState&)>* extra_filter) {
  const sim::SimTime now = simulator_.now();
  int best = -1;
  double best_rate = std::numeric_limits<double>::max();
  int ties = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const int li = static_cast<int>(i);
    if (li == exclude_local || failed_for_flow(ps, flow, li)) continue;
    if (ps.paths[i].characterize(config_) != wanted) continue;
    if (extra_filter && !(*extra_filter)(ps.paths[i])) continue;
    const double r = ps.paths[i].rate_bps(now);
    // Rates within 1% (or both idle) count as tied; reservoir-sample.
    if (best >= 0 && r <= best_rate * 1.01 + 1.0 && best_rate <= r * 1.01 + 1.0) {
      ++ties;
      if (rng_.next(static_cast<std::uint64_t>(ties)) == 0) best = li;
      if (r < best_rate) best_rate = r;
    } else if (r < best_rate) {
      best_rate = r;
      best = li;
      ties = 1;
    }
  }
  return best;
}

int HermesLb::select_path(lb::FlowCtx& flow, const net::Packet& pkt) {
  if (flow.intra_rack()) return -1;
  const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
  PairState& ps = pair(flow.src_leaf, flow.dst_leaf);
  const sim::SimTime now = simulator_.now();

  const int cur_local = flow.current_path >= 0 ? topo_.path(flow.current_path).local_index : -1;
  int chosen = cur_local;

  const bool fresh = !flow.has_sent || flow.timeout_pending ||
                     (cur_local >= 0 && failed_for_flow(ps, flow, cur_local));
  if (fresh) {
    // Algorithm 2 line 3: new flow, flow with a timeout, or failed path.
    const obs::DecisionKind kind = !flow.has_sent ? obs::DecisionKind::kInitialPlacement
                                   : flow.timeout_pending
                                       ? obs::DecisionKind::kTimeoutEscape
                                       : obs::DecisionKind::kFailureEscape;
    flow.timeout_pending = false;
    chosen = pick_fresh(ps, paths, flow);
    switch (kind) {
      case obs::DecisionKind::kInitialPlacement: ++decision_stats_.initial_placements; break;
      case obs::DecisionKind::kTimeoutEscape: ++decision_stats_.timeout_escapes; break;
      default: ++decision_stats_.failure_escapes; break;
    }
    if (rec_) [[unlikely]] record_decision(kind, flow, ps, cur_local, chosen, 0, 0.0F, now);
  } else if (cur_local >= 0 && config_.rerouting_enabled &&
             ps.paths[cur_local].characterize(config_) == PathType::kCongested) {
    // Line 14: cautious gates — only flows that sent enough and are not
    // already fast benefit from rerouting; and a flow that just moved is
    // given time to observe its new path before moving again.
    const double rate_limit = config_.rate_threshold_frac * topo_.host_rate_bps();
    const bool cooled_down = !flow.has_rerouted || now - flow.last_reroute >= config_.reroute_min_gap;
    if (cooled_down && flow.bytes_sent > config_.sent_threshold_bytes &&
        flow.rate_bps(now) < rate_limit) {
      const int better = pick_notably_better(ps, paths, cur_local, flow);
      if (better >= 0) {
        chosen = better;
        flow.last_reroute = now;
        flow.has_rerouted = true;
        ++decision_stats_.congestion_reroutes;
        if (rec_) [[unlikely]] {
          // Algorithm 2's reroute benefit at the moment of the decision.
          const PathState& cur = ps.paths[cur_local];
          const PathState& cand = ps.paths[better];
          record_decision(obs::DecisionKind::kCongestionReroute, flow, ps, cur_local, better,
                          (cur.rtt() - cand.rtt()).ns(),
                          static_cast<float>(cur.ecn_fraction() - cand.ecn_fraction()), now);
        }
      }
    }
  }

  if (chosen < 0) chosen = static_cast<int>(rng_.next(paths.size()));
  ps.paths[chosen].add_send(pkt.size, now, config_);
  return paths[chosen].id;
}

void HermesLb::on_ack(lb::FlowCtx& flow, const net::Packet& ack) {
  if (flow.intra_rack() || ack.path_id < 0) return;
  const net::FabricPath& p = topo_.path(ack.path_id);
  PairState& ps = pair(p.src_leaf, p.dst_leaf);
  PathState& st = ps.paths[p.local_index];
  if (ack.ts_echo > sim::SimTime::zero()) {
    st.add_sample(simulator_.now() - ack.ts_echo, ack.ece, config_);
  }
  // ACK progress on this (pair, path): not a blackhole; reset the count.
  if (config_.failure_sensing) {
    const auto key = hole_key(flow.src, flow.dst, p.local_index);
    auto it = ps.hole_track.find(key);
    if (it != ps.hole_track.end()) {
      it->second.acked = true;
      it->second.timeouts = 0;
    }
  }
}

void HermesLb::on_timeout(lb::FlowCtx& flow) {
  if (!config_.failure_sensing || flow.intra_rack() || flow.current_path < 0) return;
  // Blackhole detection (§3.1.2): Hermes monitors flow timeouts per
  // (source-destination pair, path). Once `blackhole_timeouts` timeouts
  // accrue with no packet of that pair ever ACKed on that path, the path
  // deterministically drops this pair's packets.
  const int li = topo_.path(flow.current_path).local_index;
  PairState& ps = pair(flow.src_leaf, flow.dst_leaf);
  // Every timeout is evidence; ACK progress on the (pair, path) resets
  // the count (on_ack), so only *consecutive* timeouts without an ACK in
  // between reach the threshold. Earlier progress on the path must not
  // veto detection — a blackhole can onset mid-flow (TCAM corruption on
  // a previously healthy switch) and the path has to re-prove itself.
  HoleTrack& track = ps.hole_track[hole_key(flow.src, flow.dst, li)];
  track.acked = false;
  if (++track.timeouts >= config_.blackhole_timeouts) {
    if (!track.latched) {
      if (track.streak < 8) ++track.streak;
      ++decision_stats_.blackhole_latches;
      if (rec_) [[unlikely]] {
        record_decision(obs::DecisionKind::kBlackholeLatch, flow, ps, li, -1, 0, 0.0F,
                        simulator_.now());
      }
    }
    track.latched = true;
    // Each confirming timeout refreshes the latch; a cleared blackhole
    // stops producing timeouts and the latch expires (see hole_active).
    track.latched_at = simulator_.now();
  }
}

void HermesLb::on_retransmit(lb::FlowCtx& flow, int path_id) {
  if (flow.intra_rack() || path_id < 0) return;
  const net::FabricPath& p = topo_.path(path_id);
  path_state(p.src_leaf, p.dst_leaf, p.local_index).add_retransmit(simulator_.now(), config_);
}

void HermesLb::enable_probing(std::function<void(int, net::Packet)> raw_send) {
  raw_send_ = std::move(raw_send);
  if (!config_.probing_enabled) return;
  simulator_.after(config_.probe_interval, [this] { probe_tick(); });
}

void HermesLb::probe_tick() {
  // Power-of-two-choices probing (§3.1.3): per rack pair and interval,
  // probe two random paths plus the previously observed best path.
  const bool filtered = !probe_sources_.empty();
  const int n_src = filtered ? static_cast<int>(probe_sources_.size()) : num_leaves_;
  for (int ai = 0; ai < n_src; ++ai) {
    const int a = filtered ? probe_sources_[ai] : ai;
    for (int b = 0; b < num_leaves_; ++b) {
      if (a == b) continue;
      const auto& paths = topo_.paths_between_leaves(a, b);
      PairState& ps = pair(a, b);
      const std::size_t n = paths.size();
      const int r1 = static_cast<int>(rng_.next(n));
      int r2 = static_cast<int>(rng_.next(n));
      if (n > 1 && r2 == r1) r2 = static_cast<int>((r2 + 1) % n);
      send_probe(a, b, r1);
      if (r2 != r1) send_probe(a, b, r2);
      if (ps.best_idx >= 0 && ps.best_idx != r1 && ps.best_idx != r2 &&
          ps.best_idx < static_cast<int>(n)) {
        send_probe(a, b, ps.best_idx);
      }
    }
  }
  simulator_.after(config_.probe_interval, [this] { probe_tick(); });
}

void HermesLb::send_probe(int src_leaf, int dst_leaf, int local_idx) {
  const auto& paths = topo_.paths_between_leaves(src_leaf, dst_leaf);
  const int agent_src = topo_.first_host_of_leaf(src_leaf);
  const int agent_dst = topo_.first_host_of_leaf(dst_leaf);

  net::Packet p;
  p.id = 0xF0000000ULL + next_probe_id_;
  p.probe_id = next_probe_id_++;
  p.type = net::PacketType::kProbe;
  p.src = agent_src;
  p.dst = agent_dst;
  p.size = net::kProbeBytes;
  p.ect = true;  // probes must be markable to observe ECN state
  p.ts_sent = simulator_.now();
  p.path_id = paths[local_idx].id;
  p.priority = 0;  // ride the data queue so the probe *sees* congestion
  p.route = topo_.forward_route(agent_src, agent_dst, p.path_id);

  ++probe_stats_.probes_sent;
  probe_stats_.probe_bytes += p.size;
  raw_send_(agent_src, std::move(p));
}

// HERMES_HOT: decision-record append (runs inside select_path/on_timeout)
// — reads only const path state, consumes no RNG, allocates nothing.
void HermesLb::record_decision(obs::DecisionKind kind, const lb::FlowCtx& flow, PairState& ps,
                               int from_local, int to_local, std::int64_t delta_rtt_ns,
                               float delta_ecn, sim::SimTime now) {
  obs::TraceRecord r = obs::make_record(obs::RecordKind::kDecision,
                                        static_cast<std::uint64_t>(now.ns()), name_id_,
                                        flow.flow_id);
  const auto cond = [&](int li) -> std::uint8_t {
    if (li < 0 || li >= static_cast<int>(ps.paths.size())) return obs::kPathCondNone;
    return static_cast<std::uint8_t>(ps.paths[static_cast<std::size_t>(li)].characterize(config_));
  };
  r.u.decision.delta_rtt_ns = delta_rtt_ns;
  r.u.decision.sent_bytes = flow.bytes_sent;
  r.u.decision.rate_bps = flow.rate_bps(now);
  r.u.decision.delta_ecn = delta_ecn;
  r.u.decision.src_leaf = static_cast<std::int16_t>(flow.src_leaf);
  r.u.decision.dst_leaf = static_cast<std::int16_t>(flow.dst_leaf);
  r.u.decision.from_path = static_cast<std::int16_t>(from_local);
  r.u.decision.to_path = static_cast<std::int16_t>(to_local);
  r.u.decision.kind = static_cast<std::uint8_t>(kind);
  r.u.decision.from_cond = cond(from_local);
  r.u.decision.to_cond = cond(to_local);
  rec_->append(r);
}

void HermesLb::register_metrics(obs::MetricsRegistry& reg) {
  reg.counter_fn("lb.initial_placements", [this] { return decision_stats_.initial_placements; });
  reg.counter_fn("lb.timeout_escapes", [this] { return decision_stats_.timeout_escapes; });
  reg.counter_fn("lb.failure_escapes", [this] { return decision_stats_.failure_escapes; });
  reg.counter_fn("lb.congestion_reroutes", [this] { return decision_stats_.congestion_reroutes; });
  reg.counter_fn("lb.blackhole_latches", [this] { return decision_stats_.blackhole_latches; });
  reg.counter_fn("lb.latch_expiries", [this] { return decision_stats_.latch_expiries; });
  reg.counter_fn("lb.probes_sent", [this] { return probe_stats_.probes_sent; });
  reg.counter_fn("lb.probe_replies", [this] { return probe_stats_.replies_received; });
  reg.counter_fn("lb.probe_bytes", [this] { return probe_stats_.probe_bytes; });
  latch_hist_ = &reg.histogram("lb.latch_lifetime_us");
}

void HermesLb::on_probe_reply(const net::Packet& reply) {
  if (reply.path_id < 0) return;
  ++probe_stats_.replies_received;
  const net::FabricPath& p = topo_.path(reply.path_id);
  PairState& ps = pair(p.src_leaf, p.dst_leaf);
  PathState& st = ps.paths[p.local_index];
  st.add_sample(simulator_.now() - reply.ts_echo, reply.ece, config_);

  // Track the best observed path for the extra "memory" probe.
  if (ps.best_idx < 0 || ps.best_idx >= static_cast<int>(ps.paths.size()) ||
      !ps.paths[ps.best_idx].has_sample() ||
      st.rtt() < ps.paths[ps.best_idx].rtt()) {
    ps.best_idx = p.local_index;
  }
}

}  // namespace hermes::core
