#include "hermes/lb/hermes.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "hermes/obs/metrics.hpp"
#include "hermes/obs/records.hpp"

namespace hermes::lb {

HermesLb::HermesLb(sim::Simulator& simulator, net::Fabric& topo, HermesConfig config)
    : simulator_{simulator},
      topo_{topo},
      config_{config},
      // The engine draws its tie-break stream from the simulator's seed
      // lattice with the same salt the pre-extraction implementation
      // forked, so decision sequences are unchanged.
      engine_{config.engine_config(topo.host_rate_bps()), topo.num_leaves(),
              simulator.rng_seed(0x4E14E5)} {
  engine_.set_sink(this);
}

engine::PathSet& HermesLb::pair(int src_leaf, int dst_leaf) {
  engine::PathSet& ps = engine_.path_set(src_leaf, dst_leaf);
  ps.ensure(topo_.paths_between_leaves(src_leaf, dst_leaf).size());
  return ps;
}

engine::PathState& HermesLb::path_state(int src_leaf, int dst_leaf, int local_index) {
  return pair(src_leaf, dst_leaf).state(static_cast<std::size_t>(local_index));
}

engine::PathType HermesLb::path_type(int src_leaf, int dst_leaf, int local_index) {
  return engine_.path_type(src_leaf, dst_leaf, local_index);
}

bool HermesLb::blackholed(std::int32_t src_host, std::int32_t dst_host, int local_index) const {
  return engine_.blackholed(topo_.leaf_of(src_host), topo_.leaf_of(dst_host), src_host, dst_host,
                            local_index, simulator_.now().ns());
}

int HermesLb::sampled_paths(int src_leaf, int dst_leaf) {
  pair(src_leaf, dst_leaf);
  return engine_.sampled_paths(src_leaf, dst_leaf);
}

engine::FlowView HermesLb::make_view(const FlowCtx& flow) const {
  engine::FlowView v;
  v.flow_id = flow.flow_id;
  v.src = flow.src;
  v.dst = flow.dst;
  v.src_group = flow.src_leaf;
  v.dst_group = flow.dst_leaf;
  v.bytes_sent = flow.bytes_sent;
  v.cur_local = flow.current_path >= 0 ? topo_.path(flow.current_path).local_index : -1;
  v.has_sent = flow.has_sent;
  v.timeout_pending = flow.timeout_pending;
  v.has_rerouted = flow.has_rerouted;
  v.last_reroute = flow.last_reroute.ns();
  // Lazy flow rate r_f: the engine evaluates it only when a decision
  // needs the R gate or a decision record is being emitted.
  v.rate_ctx = &flow;
  v.rate_fn = [](const void* ctx, engine::TimeNs now) {
    return static_cast<const FlowCtx*>(ctx)->rate_bps(sim::SimTime::nanoseconds(now));
  };
  return v;
}

int HermesLb::select_path(FlowCtx& flow, const net::Packet& pkt) {
  if (flow.intra_rack()) return -1;
  const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
  pair(flow.src_leaf, flow.dst_leaf);

  engine::FlowView view = make_view(flow);
  const int chosen = engine_.decide(view, pkt.size, simulator_.now().ns());
  // Copy the engine's flow-flag mutations back into the shared context.
  flow.timeout_pending = view.timeout_pending;
  flow.has_rerouted = view.has_rerouted;
  flow.last_reroute = sim::SimTime::nanoseconds(view.last_reroute);
  return chosen >= 0 ? paths[static_cast<std::size_t>(chosen)].id : -1;
}

void HermesLb::on_ack(FlowCtx& flow, const net::Packet& ack) {
  if (flow.intra_rack() || ack.path_id < 0) return;
  const net::FabricPath& p = topo_.path(ack.path_id);
  pair(p.src_leaf, p.dst_leaf);
  const bool has_rtt = ack.ts_echo > sim::SimTime::zero();
  engine_.on_ack(p.src_leaf, p.dst_leaf, p.local_index, flow.src, flow.dst, has_rtt,
                 has_rtt ? (simulator_.now() - ack.ts_echo).ns() : 0, ack.ece);
}

void HermesLb::on_timeout(FlowCtx& flow) {
  if (flow.intra_rack() || flow.current_path < 0) return;
  pair(flow.src_leaf, flow.dst_leaf);
  const engine::FlowView view = make_view(flow);
  engine_.on_timeout(view, simulator_.now().ns());
}

void HermesLb::on_retransmit(FlowCtx& flow, int path_id) {
  if (flow.intra_rack() || path_id < 0) return;
  const net::FabricPath& p = topo_.path(path_id);
  pair(p.src_leaf, p.dst_leaf);
  engine_.on_retransmit(p.src_leaf, p.dst_leaf, p.local_index, simulator_.now().ns());
}

void HermesLb::enable_probing(std::function<void(int, net::Packet)> raw_send) {
  raw_send_ = std::move(raw_send);
  if (!config_.probing_enabled) return;
  simulator_.after(config_.probe_interval, [this] { probe_tick(); });
}

void HermesLb::probe_tick() {
  // Power-of-two-choices probing (§3.1.3): per rack pair and interval,
  // probe two random paths plus the previously observed best path. Draws
  // come from the engine's RNG — the same stream its tie-breaking uses —
  // preserving the pre-extraction draw order.
  const bool filtered = !probe_sources_.empty();
  const int n_src = filtered ? static_cast<int>(probe_sources_.size()) : engine_.num_groups();
  for (int ai = 0; ai < n_src; ++ai) {
    const int a = filtered ? probe_sources_[static_cast<std::size_t>(ai)] : ai;
    for (int b = 0; b < engine_.num_groups(); ++b) {
      if (a == b) continue;
      const auto& paths = topo_.paths_between_leaves(a, b);
      engine::PathSet& ps = pair(a, b);
      const std::size_t n = paths.size();
      const int r1 = static_cast<int>(engine_.rng().next(n));
      int r2 = static_cast<int>(engine_.rng().next(n));
      if (n > 1 && r2 == r1) r2 = static_cast<int>((static_cast<std::size_t>(r2) + 1) % n);
      send_probe(a, b, r1);
      if (r2 != r1) send_probe(a, b, r2);
      if (ps.best_idx >= 0 && ps.best_idx != r1 && ps.best_idx != r2 &&
          ps.best_idx < static_cast<int>(n)) {
        send_probe(a, b, ps.best_idx);
      }
    }
  }
  simulator_.after(config_.probe_interval, [this] { probe_tick(); });
}

void HermesLb::send_probe(int src_leaf, int dst_leaf, int local_idx) {
  const auto& paths = topo_.paths_between_leaves(src_leaf, dst_leaf);
  const int agent_src = topo_.first_host_of_leaf(src_leaf);
  const int agent_dst = topo_.first_host_of_leaf(dst_leaf);

  net::Packet p;
  p.id = 0xF0000000ULL + next_probe_id_;
  p.probe_id = next_probe_id_++;
  p.type = net::PacketType::kProbe;
  p.src = agent_src;
  p.dst = agent_dst;
  p.size = net::kProbeBytes;
  p.ect = true;  // probes must be markable to observe ECN state
  p.ts_sent = simulator_.now();
  p.path_id = paths[static_cast<std::size_t>(local_idx)].id;
  p.priority = 0;  // ride the data queue so the probe *sees* congestion
  p.route = topo_.forward_route(agent_src, agent_dst, p.path_id);

  ++probe_stats_.probes_sent;
  probe_stats_.probe_bytes += p.size;
  raw_send_(agent_src, std::move(p));
}

void HermesLb::on_probe_reply(const net::Packet& reply) {
  if (reply.path_id < 0) return;
  ++probe_stats_.replies_received;
  const net::FabricPath& p = topo_.path(reply.path_id);
  pair(p.src_leaf, p.dst_leaf);
  engine_.feed_probe_sample(p.src_leaf, p.dst_leaf, p.local_index,
                            (simulator_.now() - reply.ts_echo).ns(), reply.ece);
}

void HermesLb::on_decision(const engine::DecisionEvent& ev) {
  if (ev.kind == engine::DecisionKind::kLatchExpire && latch_hist_ != nullptr) {
    latch_hist_->observe(ev.latch_lifetime_us);
  }
  if (rec_ == nullptr || !ev.has_flow) return;
  obs::TraceRecord r = obs::make_record(obs::RecordKind::kDecision,
                                        static_cast<std::uint64_t>(ev.time_ns), name_id_,
                                        ev.flow_id);
  r.u.decision.delta_rtt_ns = ev.delta_rtt_ns;
  r.u.decision.sent_bytes = ev.sent_bytes;
  r.u.decision.rate_bps = ev.rate_bps;
  r.u.decision.delta_ecn = ev.delta_ecn;
  r.u.decision.src_leaf = ev.src_group;
  r.u.decision.dst_leaf = ev.dst_group;
  r.u.decision.from_path = ev.from_path;
  r.u.decision.to_path = ev.to_path;
  r.u.decision.kind = static_cast<std::uint8_t>(ev.kind);
  r.u.decision.from_cond = ev.from_cond;
  r.u.decision.to_cond = ev.to_cond;
  rec_->append(r);
}

void HermesLb::register_metrics(obs::MetricsRegistry& reg) {
  reg.counter_fn("lb.initial_placements", [this] { return engine_.stats().initial_placements; });
  reg.counter_fn("lb.timeout_escapes", [this] { return engine_.stats().timeout_escapes; });
  reg.counter_fn("lb.failure_escapes", [this] { return engine_.stats().failure_escapes; });
  reg.counter_fn("lb.congestion_reroutes",
                 [this] { return engine_.stats().congestion_reroutes; });
  reg.counter_fn("lb.blackhole_latches", [this] { return engine_.stats().blackhole_latches; });
  reg.counter_fn("lb.latch_expiries", [this] { return engine_.stats().latch_expiries; });
  reg.counter_fn("lb.probes_sent", [this] { return probe_stats_.probes_sent; });
  reg.counter_fn("lb.probe_replies", [this] { return probe_stats_.replies_received; });
  reg.counter_fn("lb.probe_bytes", [this] { return probe_stats_.probe_bytes; });
  latch_hist_ = &reg.histogram("lb.latch_lifetime_us");
}

}  // namespace hermes::lb
