#pragma once

#include <cstdint>

#include "hermes/net/dre.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::lb {

/// Per-flow state shared between the transport and the load balancer.
/// The transport owns it; every scheme reads/updates the fields it needs
/// (flowlet gap, current path, sent bytes, rate estimate, timeout flag).
struct FlowCtx {
  std::uint64_t flow_id = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  int src_leaf = -1;
  int dst_leaf = -1;

  std::uint64_t bytes_sent = 0;    ///< cumulative payload handed to the wire
  int current_path = -1;           ///< fabric path of the last transmission
  sim::SimTime last_send{};        ///< time of the last transmission
  bool has_sent = false;           ///< false until the first packet
  bool timeout_pending = false;    ///< set on RTO, cleared once acted upon
  std::uint32_t reroutes = 0;      ///< times the path changed mid-flow

  /// Per-current-path accounting used by Hermes's blackhole detector
  /// (§3.1.2): consecutive timeouts seen on the current path, and whether
  /// any ACK progress happened on it. Reset on every path change; the
  /// timeout counter also resets when an ACK arrives.
  std::uint64_t acked_on_path = 0;
  std::uint32_t timeouts_on_path = 0;

  /// Time of the last congestion-triggered reroute (Hermes cooldown).
  sim::SimTime last_reroute{};
  bool has_rerouted = false;

  net::Dre rate_dre{sim::usec(100), 0.2};  ///< flow sending rate r_f

  [[nodiscard]] bool intra_rack() const { return src_leaf == dst_leaf; }
  [[nodiscard]] double rate_bps(sim::SimTime now) const { return rate_dre.rate_bps(now); }
};

/// 64-bit mix used wherever a stable hash of an id is needed (ECMP,
/// blackhole predicates, seed derivation).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace hermes::lb
