#pragma once

#include <cstdint>
#include <string_view>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"

namespace hermes::lb {

/// ECMP: per-flow random hashing (RFC 2992). Every packet of a flow takes
/// the path selected by a hash of the flow id; the choice never changes,
/// no matter what the network does.
class EcmpLb final : public LoadBalancer {
 public:
  explicit EcmpLb(net::Fabric& topo, std::uint64_t salt = 0) : topo_{topo}, salt_{salt} {}

  int select_path(FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    return paths[mix64(flow.flow_id ^ salt_) % paths.size()].id;
  }

  [[nodiscard]] std::string_view name() const override { return "ecmp"; }

 private:
  net::Fabric& topo_;
  std::uint64_t salt_;
};

}  // namespace hermes::lb
