#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {

/// FlowBender (Kabbani et al., CoNEXT'14): end-host, flow-level adaptive
/// rerouting. Each flow hashes onto a path; when the fraction of
/// ECN-marked ACKs within an observation epoch exceeds a threshold (or an
/// RTO fires), the flow perturbs its hash ("bends") and lands on a random
/// new path. Reactive and blind: it knows *that* it is congested, never
/// *where* to go. The paper implemented it on its testbed and found it
/// close to ECMP with default settings (§5.1 remark); we include it for
/// completeness and for the Table 1 taxonomy.
struct FlowBenderConfig {
  double mark_threshold = 0.05;       ///< ECN fraction that triggers a bend
  sim::SimTime epoch = sim::usec(200);  ///< observation window (~1 RTT)
};

class FlowBenderLb final : public LoadBalancer {
 public:
  FlowBenderLb(sim::Simulator& simulator, net::Fabric& topo, FlowBenderConfig config = {})
      : simulator_{simulator}, topo_{topo}, config_{config} {
    state_.reserve(kExpectedConcurrentFlows);  // avoid rehashing mid-run
  }

  int select_path(FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    State& st = state_[flow.flow_id];
    if (flow.timeout_pending) {
      flow.timeout_pending = false;
      ++st.bends;
    }
    return paths[mix64(flow.flow_id ^ (0xB5ADULL * st.bends)) % paths.size()].id;
  }

  void on_ack(FlowCtx& flow, const net::Packet& ack) override {
    if (flow.intra_rack()) return;
    State& st = state_[flow.flow_id];
    const sim::SimTime now = simulator_.now();
    ++st.acks;
    if (ack.ece) ++st.marked;
    if (now - st.epoch_start < config_.epoch) return;
    if (st.acks > 0 &&
        static_cast<double>(st.marked) / static_cast<double>(st.acks) > config_.mark_threshold) {
      ++st.bends;  // rehash next packet
    }
    st.acks = 0;
    st.marked = 0;
    st.epoch_start = now;
  }

  // RTO-triggered bending rides the transport-maintained timeout flag,
  // consumed in select_path.

  void on_flow_complete(FlowCtx& flow) override { state_.erase(flow.flow_id); }

  [[nodiscard]] std::string_view name() const override { return "flowbender"; }

  /// Test hook: how many times a flow has bent so far.
  [[nodiscard]] std::uint32_t bends(std::uint64_t flow_id) {
    auto it = state_.find(flow_id);
    return it == state_.end() ? 0 : it->second.bends;
  }

 private:
  struct State {
    std::uint32_t bends = 0;
    std::uint32_t acks = 0;
    std::uint32_t marked = 0;
    sim::SimTime epoch_start{};
  };

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  FlowBenderConfig config_;
  std::unordered_map<std::uint64_t, State> state_;
};

}  // namespace hermes::lb
