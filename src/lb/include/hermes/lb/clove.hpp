#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {

/// CLOVE-ECN (Katta et al.): edge-based per-flowlet weighted round robin.
/// Each source virtual switch keeps a weight per path toward each
/// destination leaf; weights shrink multiplicatively when ACKs for a path
/// carry ECN echoes (rate-limited to roughly once per RTT per path so one
/// marked window does not zero a weight), and new flowlets are spread in
/// proportion to the weights. Congestion-aware but with *piggybacked-only*
/// visibility: a path the host is not using gets no fresh information.
struct CloveConfig {
  sim::SimTime flowlet_timeout = sim::usec(150);
  double shift = 0.25;                    ///< fraction of weight removed per mark event
  sim::SimTime mark_min_gap = sim::usec(100);  ///< per-path decrease rate limit
  double min_weight = 0.02;               ///< keep probing dying paths
};

class CloveLb final : public LoadBalancer {
 public:
  CloveLb(sim::Simulator& simulator, net::Fabric& topo, CloveConfig config = {})
      : simulator_{simulator},
        topo_{topo},
        config_{config},
        rng_{simulator.rng_stream(0xC10FE)} {
    // Keyed by (src host, dst leaf): bounded by hosts x leaves, typically
    // a few thousand entries — reserve once, never rehash on the hot path.
    state_.reserve(static_cast<std::size_t>(topo.num_hosts()) *
                   static_cast<std::size_t>(topo.num_leaves()));
  }

  int select_path(FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const sim::SimTime now = simulator_.now();
    const bool new_flowlet =
        !flow.has_sent || (now - flow.last_send) > config_.flowlet_timeout;
    if (!new_flowlet && flow.current_path >= 0) return flow.current_path;

    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    State& st = state(flow.src, flow.dst_leaf, paths.size());
    // Weighted random draw over path weights.
    double total = 0;
    for (double w : st.weights) total += w;
    double x = rng_.uniform() * total;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      x -= st.weights[i];
      if (x <= 0) return paths[i].id;
    }
    return paths.back().id;
  }

  void on_ack(FlowCtx& flow, const net::Packet& ack) override {
    // The ACK carries the path id of the data packet it acknowledges, so
    // the signal is attributed correctly even right after a reroute.
    if (!ack.ece || flow.intra_rack() || ack.path_id < 0) return;
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    State& st = state(flow.src, flow.dst_leaf, paths.size());
    const int i = topo_.path(ack.path_id).local_index;
    const sim::SimTime now = simulator_.now();
    if (now - st.last_decrease[i] < config_.mark_min_gap) return;
    st.last_decrease[i] = now;
    // Move weight off the congested path, spread evenly over the others.
    const double moved = st.weights[i] * config_.shift;
    const double keep = std::max(st.weights[i] - moved, config_.min_weight);
    const double actually_moved = st.weights[i] - keep;
    st.weights[i] = keep;
    if (paths.size() > 1) {
      const double share = actually_moved / static_cast<double>(paths.size() - 1);
      for (std::size_t j = 0; j < paths.size(); ++j)
        if (j != static_cast<std::size_t>(i)) st.weights[j] += share;
    }
  }

  [[nodiscard]] std::string_view name() const override { return "clove-ecn"; }

  /// Test hook: current weights for a (source host, destination leaf) pair.
  [[nodiscard]] std::vector<double> weights(int src_host, int dst_leaf) {
    const int src_leaf = topo_.leaf_of(src_host);
    const auto& paths = topo_.paths_between_leaves(src_leaf, dst_leaf);
    return state(src_host, dst_leaf, paths.size()).weights;
  }

 private:
  struct State {
    std::vector<double> weights;
    std::vector<sim::SimTime> last_decrease;
  };

  State& state(int src_host, int dst_leaf, std::size_t num_paths) {
    State& st = state_[(static_cast<std::uint64_t>(src_host) << 16) | static_cast<std::uint32_t>(dst_leaf)];
    if (st.weights.empty()) {
      st.weights.assign(num_paths, 1.0);
      // Negative sentinel: the very first mark (possibly at t=0) must not
      // be swallowed by the rate limiter.
      st.last_decrease.assign(num_paths, sim::SimTime::nanoseconds(-1'000'000'000));
    }
    return st;
  }

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  CloveConfig config_;
  sim::Rng rng_;
  std::unordered_map<std::uint64_t, State> state_;
};

}  // namespace hermes::lb
