#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "hermes/engine/engine.hpp"
#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::lb {

/// Hermes parameters (Table 4) in the simulator's vocabulary: SimTime
/// durations and a rate gate expressed as a *fraction* of the host link
/// rate. `defaults_for(topology)` derives the RTT thresholds from the
/// fabric's base RTT and one-hop delay exactly as the paper prescribes
/// (§3.3):
///   T_RTT_low  = base RTT + 20..40us          (default +30us)
///   T_RTT_high = base RTT + 1.5 x one-hop delay
///   Delta_RTT  = one-hop delay
/// where one-hop delay = ECN marking threshold / link capacity.
/// engine_config() lowers this into the environment-neutral
/// engine::Config (absolute nanoseconds and bits/second).
struct HermesConfig {
  // Congestion sensing thresholds.
  double t_ecn = 0.40;                   ///< ECN fraction of a congested path
  sim::SimTime t_rtt_low{};              ///< below: lightly loaded
  sim::SimTime t_rtt_high{};             ///< above (with ECN): congested
  // "Notably better" margins for cautious rerouting.
  sim::SimTime delta_rtt{};
  double delta_ecn = 0.05;
  // Flow-status gates for cautious rerouting.
  double rate_threshold_frac = 0.30;     ///< R, fraction of host link rate
  std::uint64_t sent_threshold_bytes = 600 * 1024;  ///< S

  // Active probing (simulator-side concern; the engine only consumes the
  // resulting samples via feed_probe_sample).
  sim::SimTime probe_interval = sim::usec(500);

  // Failure sensing.
  std::uint32_t blackhole_timeouts = 3;  ///< timeouts w/o any ACK => blackhole
  double retx_threshold = 0.01;          ///< f_retransmission limit
  sim::SimTime retx_epoch = sim::msec(10);  ///< tau
  /// A random-drop latch expires after this long and must be re-confirmed
  /// by fresh evidence. A truly failing switch re-latches within one tau;
  /// a congestion-burst false positive self-heals. 0 = latch forever.
  sim::SimTime failure_expiry = sim::msec(100);

  /// Minimum spacing between congestion-triggered reroutes of one flow.
  /// Guards against path bouncing when the congestion a flow senses is
  /// actually at its destination host (every alternative looks "notably
  /// better" through rack-level probe state but is not). Failure- and
  /// timeout-triggered switches are never delayed.
  sim::SimTime reroute_min_gap = sim::msec(2);

  // Signal smoothing.
  double rtt_ewma_gain = 0.5;
  double ecn_ewma_gain = 1.0 / 16.0;

  // Feature toggles (ablations of Fig. 18; §5.4 TCP mode).
  bool probing_enabled = true;
  bool rerouting_enabled = true;   ///< reroute ongoing flows on congestion
  bool failure_sensing = true;
  bool use_ecn = true;             ///< false: sense with RTT only (plain TCP)

  /// Recommended settings for a concrete fabric.
  [[nodiscard]] static HermesConfig defaults_for(const net::Fabric& topo) {
    HermesConfig c;
    const auto base = topo.base_rtt();
    const auto hop = topo.one_hop_delay();
    c.t_rtt_low = base + sim::usec(30);
    c.t_rtt_high = base + sim::SimTime::nanoseconds(hop.ns() * 3 / 2);
    c.delta_rtt = hop;
    return c;
  }

  /// Lower into the engine's environment-neutral parameter set.
  /// `host_rate_bps` converts the fractional rate gate to absolute.
  [[nodiscard]] engine::Config engine_config(double host_rate_bps) const {
    engine::Config e;
    e.t_ecn = t_ecn;
    e.t_rtt_low = t_rtt_low.ns();
    e.t_rtt_high = t_rtt_high.ns();
    e.delta_rtt = delta_rtt.ns();
    e.delta_ecn = delta_ecn;
    e.reroute_rate_limit_bps = rate_threshold_frac * host_rate_bps;
    e.sent_threshold_bytes = sent_threshold_bytes;
    e.blackhole_timeouts = blackhole_timeouts;
    e.retx_threshold = retx_threshold;
    e.retx_epoch = retx_epoch.ns();
    e.failure_expiry = failure_expiry.ns();
    e.reroute_min_gap = reroute_min_gap.ns();
    e.rtt_ewma_gain = rtt_ewma_gain;
    e.ecn_ewma_gain = ecn_ewma_gain;
    e.rerouting_enabled = rerouting_enabled;
    e.failure_sensing = failure_sensing;
    e.use_ecn = use_ecn;
    return e;
  }
};

/// Counters for the probing/visibility analysis (Table 6).
struct ProbeStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t probe_bytes = 0;
};

/// Hermes in the simulator: a thin adapter binding engine::Engine — which
/// owns all of Algorithm 2's sensing and decision state — to the
/// simulator's fabric, clock, flow contexts, probing transport, and
/// observability (flight recorder + metrics).
///
/// State is kept per ordered rack pair, matching the paper's deployment
/// model where one hypervisor per rack acts as the probe agent and shares
/// path information with every hypervisor under the same rack (§3.1.3).
/// Data-plane signals (ACK RTT/ECN, timeouts, retransmissions) and probe
/// replies feed the same per-pair engine PathSet tables.
///
/// The adapter implements engine::DecisionSink: every Algorithm 2
/// decision and latch transition arrives as a DecisionEvent, which it
/// forwards into the flight recorder (when attached) and the
/// latch-lifetime histogram. The sink is always attached, so the engine's
/// observable behavior does not depend on whether recording is on.
class HermesLb final : public LoadBalancer, private engine::DecisionSink {
 public:
  HermesLb(sim::Simulator& simulator, net::Fabric& topo, HermesConfig config);

  // --- lb::LoadBalancer -------------------------------------------------
  int select_path(FlowCtx& flow, const net::Packet& pkt) override;
  void on_ack(FlowCtx& flow, const net::Packet& ack) override;
  void on_timeout(FlowCtx& flow) override;
  void on_retransmit(FlowCtx& flow, int path_id) override;
  [[nodiscard]] std::string_view name() const override { return "hermes"; }

  // --- probing ----------------------------------------------------------
  /// Turn on active probing. `raw_send(src_host, packet)` must transmit
  /// the packet from that host's NIC; the harness wires it to the rack
  /// agents' HostStacks. Probing runs every config.probe_interval.
  void enable_probing(std::function<void(int src_host, net::Packet)> raw_send);
  /// Deliver a probe reply arriving at a rack agent.
  void on_probe_reply(const net::Packet& reply);
  /// Restrict probing to these source leaves (default: all). The sharded
  /// harness runs one HermesLb per shard and filters each instance to the
  /// leaves whose rack agents that shard owns, so probes originate — and
  /// their replies return — strictly shard-locally.
  void set_probe_sources(std::vector<int> leaves) { probe_sources_ = std::move(leaves); }
  [[nodiscard]] const ProbeStats& probe_stats() const { return probe_stats_; }

  // --- observability ----------------------------------------------------
  /// Attach (null detaches) the scenario's flight recorder: every
  /// Algorithm 2 decision and blackhole-latch transition is appended as a
  /// kDecision record carrying the decision inputs (ΔRTT, ΔECN, S, R) and
  /// the path-condition transition.
  void set_recorder(obs::FlightRecorder* rec) {
    rec_ = rec;
    name_id_ = rec != nullptr ? rec->intern("hermes") : 0;
  }
  /// Register "lb.*" decision/probe counters and the latch-lifetime
  /// histogram with the scenario's registry.
  void register_metrics(obs::MetricsRegistry& reg);
  [[nodiscard]] const engine::DecisionStats& decision_stats() const { return engine_.stats(); }

  // --- introspection (tests, traces, benches) ---------------------------
  [[nodiscard]] const HermesConfig& config() const { return config_; }
  /// The embedded decision engine (tests drive conformance checks and
  /// membership churn through it directly).
  [[nodiscard]] engine::Engine& engine() { return engine_; }
  [[nodiscard]] engine::PathState& path_state(int src_leaf, int dst_leaf, int local_index);
  [[nodiscard]] engine::PathType path_type(int src_leaf, int dst_leaf, int local_index);
  [[nodiscard]] bool blackholed(std::int32_t src_host, std::int32_t dst_host,
                                int local_index) const;
  /// Number of distinct paths with at least one sample for a rack pair
  /// (the "visibility" a sender has, Table 6).
  [[nodiscard]] int sampled_paths(int src_leaf, int dst_leaf);

 private:
  // --- engine::DecisionSink ---------------------------------------------
  void on_decision(const engine::DecisionEvent& ev) override;

  /// Size the pair's PathSet to the fabric's path count (outside the
  /// engine's allocation-free decision path) and return it.
  engine::PathSet& pair(int src_leaf, int dst_leaf);
  /// Project the simulator flow context into the engine's view.
  [[nodiscard]] engine::FlowView make_view(const FlowCtx& flow) const;
  void probe_tick();
  void send_probe(int src_leaf, int dst_leaf, int local_idx);

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  HermesConfig config_;
  engine::Engine engine_;

  std::function<void(int, net::Packet)> raw_send_;
  std::vector<int> probe_sources_;  ///< empty = probe from every leaf
  ProbeStats probe_stats_;
  std::uint64_t next_probe_id_ = 1;

  obs::FlightRecorder* rec_ = nullptr;   ///< null when observability is off
  std::uint32_t name_id_ = 0;            ///< interned "hermes", valid while rec_ set
  obs::Histogram* latch_hist_ = nullptr; ///< latch lifetimes (us), null until registered
};

}  // namespace hermes::lb
