#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"

namespace hermes::lb {

/// Congestion-oblivious spraying at a fixed granularity, covering:
///   * DRB   — per-packet round robin, equal weights;
///   * Presto — per-flowcell (64KB) round robin;
///   * Presto* (the paper's variant) — per-packet round robin, with static
///     topology-dependent weights under asymmetry (§5.2) and a receiver
///     reordering buffer (configured in the transport, not here).
///
/// Weighted mode allocates `weight` consecutive units to each path, which
/// is exactly the behaviour that produces the congestion-mismatch effect
/// of §2.2.2 Example 3.
struct SprayConfig {
  std::uint32_t cell_bytes = 0;  ///< 0 = per packet, else flowcell size
  bool weighted = false;         ///< weights proportional to path capacity
};

class SprayLb final : public LoadBalancer {
 public:
  SprayLb(net::Fabric& topo, SprayConfig config, std::string_view name)
      : topo_{topo}, config_{config}, name_{name} {
    state_.reserve(kExpectedConcurrentFlows);  // avoid rehashing mid-run
  }

  int select_path(FlowCtx& flow, const net::Packet& pkt) override {
    if (flow.intra_rack()) return -1;
    State& st = state_[flow.flow_id];
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    if (st.weights.empty()) init_state(st, paths, flow.flow_id);

    if (st.remaining_units == 0) {
      st.idx = (st.idx + 1) % paths.size();
      st.remaining_units = st.weights[st.idx];
      st.cell_fill = 0;
    }
    if (config_.cell_bytes == 0) {
      --st.remaining_units;  // one packet per unit
    } else {
      st.cell_fill += pkt.payload;
      if (st.cell_fill >= config_.cell_bytes) {
        st.cell_fill = 0;
        --st.remaining_units;
      }
    }
    return paths[st.idx].id;
  }

  void on_flow_complete(FlowCtx& flow) override { state_.erase(flow.flow_id); }

  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  struct State {
    std::vector<std::uint32_t> weights;
    std::size_t idx = 0;
    std::uint32_t remaining_units = 0;
    std::uint32_t cell_fill = 0;
  };

  void init_state(State& st, const std::vector<net::FabricPath>& paths, std::uint64_t flow_id) {
    double min_cap = paths[0].capacity_bps;
    for (const auto& p : paths) min_cap = std::min(min_cap, p.capacity_bps);
    st.weights.reserve(paths.size());
    for (const auto& p : paths) {
      const double w = config_.weighted ? p.capacity_bps / min_cap : 1.0;
      st.weights.push_back(static_cast<std::uint32_t>(w + 0.5));
    }
    // Start at a hashed offset so concurrent flows do not synchronize on
    // path 0 (round-robin phase desynchronization, as Presto shuffles).
    st.idx = mix64(flow_id) % paths.size();
    st.remaining_units = st.weights[st.idx];
  }

  net::Fabric& topo_;
  SprayConfig config_;
  std::string_view name_;
  std::unordered_map<std::uint64_t, State> state_;
};

/// Factory helpers for the named schemes.
[[nodiscard]] inline SprayLb make_drb(net::Fabric& topo) {
  return SprayLb{topo, SprayConfig{.cell_bytes = 0, .weighted = false}, "drb"};
}
[[nodiscard]] inline SprayLb make_presto_star(net::Fabric& topo, bool weighted) {
  return SprayLb{topo, SprayConfig{.cell_bytes = 0, .weighted = weighted}, "presto*"};
}
[[nodiscard]] inline SprayLb make_presto_flowcell(net::Fabric& topo) {
  return SprayLb{topo, SprayConfig{.cell_bytes = 64 * 1024, .weighted = false}, "presto"};
}

}  // namespace hermes::lb
