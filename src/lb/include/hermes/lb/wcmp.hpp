#pragma once

#include <cstdint>
#include <string_view>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"

namespace hermes::lb {

/// WCMP: weighted ECMP. Like ECMP, every flow is hashed onto one path
/// for its lifetime, but the hash space is weighted by path capacity so
/// that a 2G path receives a fifth of the flows a 10G path gets. The
/// standard operator response to *known, static* asymmetry — still
/// oblivious to congestion and failures (it is a useful control:
/// how much of the asymmetric-fabric gap is just static weighting?).
class WcmpLb final : public LoadBalancer {
 public:
  explicit WcmpLb(net::Fabric& topo, std::uint64_t salt = 0) : topo_{topo}, salt_{salt} {}

  int select_path(FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    double total = 0;
    for (const auto& p : paths) total += p.capacity_bps;
    // Map the hash uniformly onto [0, total) and walk the capacities.
    const double x = static_cast<double>(mix64(flow.flow_id ^ salt_) % (1ULL << 53)) /
                     static_cast<double>(1ULL << 53) * total;
    double acc = 0;
    for (const auto& p : paths) {
      acc += p.capacity_bps;
      if (x < acc) return p.id;
    }
    return paths.back().id;
  }

  [[nodiscard]] std::string_view name() const override { return "wcmp"; }

 private:
  net::Fabric& topo_;
  std::uint64_t salt_;
};

}  // namespace hermes::lb
