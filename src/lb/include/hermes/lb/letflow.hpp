#pragma once

#include <string_view>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {

/// LetFlow (Vanini et al., NSDI'17): flowlet switching with *random* path
/// choice. A new flowlet starts whenever the flow has been idle longer
/// than the flowlet timeout; flowlet sizes then adapt implicitly to path
/// quality. Congestion-oblivious but failure-tolerant "by accident":
/// drops create gaps, gaps create flowlets, flowlets sometimes escape.
struct LetFlowConfig {
  sim::SimTime flowlet_timeout = sim::usec(150);
};

class LetFlowLb final : public LoadBalancer {
 public:
  LetFlowLb(sim::Simulator& simulator, net::Fabric& topo, LetFlowConfig config = {})
      : simulator_{simulator},
        topo_{topo},
        config_{config},
        rng_{simulator.rng_stream(0x1E7F10F)} {}

  int select_path(FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const sim::SimTime now = simulator_.now();
    const bool new_flowlet =
        !flow.has_sent || (now - flow.last_send) > config_.flowlet_timeout;
    if (new_flowlet || flow.current_path < 0) {
      const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
      return paths[rng_.next(paths.size())].id;
    }
    return flow.current_path;
  }

  [[nodiscard]] std::string_view name() const override { return "letflow"; }

 private:
  sim::Simulator& simulator_;
  net::Fabric& topo_;
  LetFlowConfig config_;
  sim::Rng rng_;
};

}  // namespace hermes::lb
