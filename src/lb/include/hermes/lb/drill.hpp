#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {

/// DRILL (Ghorbani et al.): switch-local per-packet micro load balancing.
/// For every packet the source leaf samples `d` random output queues plus
/// the queue it remembered as best, and forwards to the shortest one
/// (power-of-d-choices with memory, applied to queue occupancy).
/// Local-only and congestion-mismatch-prone under asymmetry (§7), but
/// excellent at absorbing microbursts on symmetric fabrics. Not part of
/// the paper's headline evaluation; included to complete Table 1.
struct DrillConfig {
  int samples = 2;  ///< d random queues examined per packet
};

class DrillLb final : public LoadBalancer {
 public:
  DrillLb(sim::Simulator& simulator, net::Topology& topo, DrillConfig config = {})
      : topo_{topo},
        config_{config},
        rng_{simulator.rng_stream(0xD811)},
        best_(static_cast<std::size_t>(topo.config().num_leaves) * topo.config().num_leaves, 0) {}

  int select_path(FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    auto& remembered = best_[static_cast<std::size_t>(flow.src_leaf) *
                                 topo_.config().num_leaves +
                             flow.dst_leaf];
    if (remembered >= paths.size()) remembered = 0;

    std::size_t best = remembered;
    std::uint32_t best_backlog = uplink_backlog(flow.src_leaf, paths[best]);
    for (int k = 0; k < config_.samples; ++k) {
      const std::size_t i = rng_.next(paths.size());
      const std::uint32_t b = uplink_backlog(flow.src_leaf, paths[i]);
      if (b < best_backlog) {
        best_backlog = b;
        best = i;
      }
    }
    remembered = best;
    return paths[best].id;
  }

  [[nodiscard]] std::string_view name() const override { return "drill"; }

 private:
  [[nodiscard]] std::uint32_t uplink_backlog(int src_leaf, const net::FabricPath& p) {
    return topo_.leaf_uplink(src_leaf, p.spine, p.link_idx).backlog_bytes();
  }

  net::Topology& topo_;
  DrillConfig config_;
  sim::Rng rng_;
  std::vector<std::size_t> best_;
};

}  // namespace hermes::lb
