#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {

/// CONGA (Alizadeh et al., SIGCOMM'14): leaf-switch based, globally
/// congestion-aware flowlet switching.
///
/// Faithful to the published design at the granularity the paper simulates:
///  * each fabric link runs a DRE; transiting packets carry the max
///    quantized metric of the path (stamped by Switch/Port);
///  * the destination leaf stores per-(source leaf, path) metrics and
///    piggybacks one (lbtag, metric) pair per reverse packet;
///  * the source leaf combines fed-back metrics with its local uplink DREs
///    and routes each new flowlet on the min-max path;
///  * fed-back metrics older than the aging interval are treated as zero
///    ("the path is assumed empty"), which is what produces the
///    hidden-terminal flip-flop of §2.2.2 Example 4.
struct CongaConfig {
  sim::SimTime flowlet_timeout = sim::usec(150);
  sim::SimTime metric_aging = sim::msec(10);
};

class CongaLb final : public LoadBalancer {
 public:
  CongaLb(sim::Simulator& simulator, net::Topology& topo, CongaConfig config = {});

  int select_path(FlowCtx& flow, const net::Packet& pkt) override;
  void on_data_arrival(const net::Packet& data) override;
  void decorate_ack(const net::Packet& data, net::Packet& ack) override;
  void on_ack(FlowCtx& flow, const net::Packet& ack) override;

  [[nodiscard]] std::string_view name() const override { return "conga"; }

  /// Test/trace hook: current combined metric of a path as seen by the
  /// source leaf (max of local DRE and fed-back remote metric).
  [[nodiscard]] std::uint8_t path_metric(int src_leaf, int dst_leaf, int local_index);

 private:
  struct Entry {
    std::uint8_t metric = 0;
    sim::SimTime last{};
    bool valid = false;
  };
  struct PairTable {
    std::vector<Entry> entries;  // indexed by local path index
    std::size_t fb_cursor = 0;   // round-robin feedback selector
  };

  [[nodiscard]] PairTable& to_leaf(int src_leaf, int dst_leaf) {
    return to_leaf_[static_cast<std::size_t>(src_leaf) * num_leaves_ + dst_leaf];
  }
  [[nodiscard]] PairTable& from_leaf(int dst_leaf, int src_leaf) {
    return from_leaf_[static_cast<std::size_t>(dst_leaf) * num_leaves_ + src_leaf];
  }
  [[nodiscard]] std::uint8_t remote_metric(const Entry& e) const;
  void ensure_size(PairTable& t, std::size_t n) {
    if (t.entries.size() < n) t.entries.resize(n);
  }

  sim::Simulator& simulator_;
  net::Topology& topo_;
  CongaConfig config_;
  sim::Rng rng_;
  int num_leaves_;
  std::vector<PairTable> to_leaf_;
  std::vector<PairTable> from_leaf_;
};

}  // namespace hermes::lb
