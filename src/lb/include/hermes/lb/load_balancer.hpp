#pragma once

#include <cstddef>
#include <string_view>

#include "hermes/lb/flow_ctx.hpp"
#include "hermes/net/packet.hpp"

namespace hermes::lb {

/// Initial bucket reservation for per-flow state maps kept by schemes.
/// Sized for the concurrent-flow population of the paper's sweeps so the
/// maps never rehash on the packet path (they grow only if a workload
/// keeps more flows in flight than this).
inline constexpr std::size_t kExpectedConcurrentFlows = 1024;

/// Path-selection interface implemented by every scheme (ECMP, DRB,
/// Presto*, LetFlow, CONGA, CLOVE-ECN, Hermes).
///
/// The transport calls select_path() for every outgoing data packet
/// *before* stamping the route, and feeds back the signals each scheme
/// needs: ACK arrival (RTT/ECN), data arrival at the destination side
/// (CONGA's from-leaf table), ACK decoration (CONGA feedback), timeouts
/// and retransmissions (Hermes failure sensing).
///
/// One instance serves the whole fabric. Schemes keep their state keyed by
/// host/leaf exactly as their real implementations would (per-host virtual
/// switch state for edge schemes, per-leaf tables for CONGA), so no scheme
/// gains artificial global knowledge.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Choose the fabric path for this packet of `flow`. Returns a path id
  /// valid for the flow's leaf pair, or -1 for intra-rack flows.
  virtual int select_path(FlowCtx& flow, const net::Packet& pkt) = 0;

  /// Sender-side: an ACK for `flow` arrived (carries echoed timestamps,
  /// ECE, and possibly scheme-specific feedback).
  virtual void on_ack(FlowCtx& flow, const net::Packet& ack) { (void)flow, (void)ack; }

  /// Receiver-side: a data packet arrived at its destination host.
  virtual void on_data_arrival(const net::Packet& data) { (void)data; }

  /// Receiver-side: an ACK for `data` is about to be sent; the scheme may
  /// piggyback feedback on it (CONGA).
  virtual void decorate_ack(const net::Packet& data, net::Packet& ack) { (void)data, (void)ack; }

  /// Sender-side: the flow's retransmission timer fired.
  virtual void on_timeout(FlowCtx& flow) { (void)flow; }

  /// Sender-side: a segment of `flow` was retransmitted; `path_id` is the
  /// path the lost copy was sent on.
  virtual void on_retransmit(FlowCtx& flow, int path_id) { (void)flow, (void)path_id; }

  /// Sender-side: the flow completed (all bytes acknowledged).
  virtual void on_flow_complete(FlowCtx& flow) { (void)flow; }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace hermes::lb
