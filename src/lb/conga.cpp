#include "hermes/lb/conga.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace hermes::lb {

CongaLb::CongaLb(sim::Simulator& simulator, net::Topology& topo, CongaConfig config)
    : simulator_{simulator},
      topo_{topo},
      config_{config},
      rng_{simulator.rng_stream(0xC09624)},
      num_leaves_{topo.config().num_leaves} {
  to_leaf_.resize(static_cast<std::size_t>(num_leaves_) * num_leaves_);
  from_leaf_.resize(static_cast<std::size_t>(num_leaves_) * num_leaves_);
}

std::uint8_t CongaLb::remote_metric(const Entry& e) const {
  if (!e.valid) return 0;
  // Aged-out metrics are assumed to describe an empty path.
  if (simulator_.now() - e.last > config_.metric_aging) return 0;
  return e.metric;
}

std::uint8_t CongaLb::path_metric(int src_leaf, int dst_leaf, int local_index) {
  const auto& paths = topo_.paths_between_leaves(src_leaf, dst_leaf);
  const net::FabricPath& p = paths[local_index];
  const std::uint8_t local =
      topo_.leaf_uplink(src_leaf, p.spine, p.link_idx).conga_metric();
  PairTable& t = to_leaf(src_leaf, dst_leaf);
  ensure_size(t, paths.size());
  return std::max(local, remote_metric(t.entries[local_index]));
}

int CongaLb::select_path(FlowCtx& flow, const net::Packet&) {
  if (flow.intra_rack()) return -1;
  const sim::SimTime now = simulator_.now();
  const bool new_flowlet =
      !flow.has_sent || (now - flow.last_send) > config_.flowlet_timeout;
  if (!new_flowlet && flow.current_path >= 0) return flow.current_path;

  const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
  PairTable& t = to_leaf(flow.src_leaf, flow.dst_leaf);
  ensure_size(t, paths.size());

  int best = -1;
  std::uint8_t best_metric = 255;
  int ties = 0;
  const int current_local =
      flow.current_path >= 0 ? topo_.path(flow.current_path).local_index : -1;
  bool current_is_best = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const net::FabricPath& p = paths[i];
    const std::uint8_t local =
        topo_.leaf_uplink(flow.src_leaf, p.spine, p.link_idx).conga_metric();
    const std::uint8_t m = std::max(local, remote_metric(t.entries[i]));
    if (m < best_metric) {
      best_metric = m;
      best = static_cast<int>(i);
      ties = 1;
      current_is_best = (static_cast<int>(i) == current_local);
    } else if (m == best_metric) {
      ++ties;
      if (static_cast<int>(i) == current_local) current_is_best = true;
      // Reservoir-sample among ties for an unbiased random choice.
      if (rng_.next(static_cast<std::uint64_t>(ties)) == 0) best = static_cast<int>(i);
    }
  }
  // CONGA keeps the flowlet where it is when the current path ties the best
  // (avoids gratuitous moves).
  if (current_is_best) {
    const std::uint8_t cur_m = path_metric(flow.src_leaf, flow.dst_leaf, current_local);
    if (cur_m == best_metric) best = current_local;
  }
  return paths[best].id;
}

void CongaLb::on_data_arrival(const net::Packet& data) {
  const int src_leaf = topo_.leaf_of(data.src);
  const int dst_leaf = topo_.leaf_of(data.dst);
  if (src_leaf == dst_leaf) return;
  PairTable& t = from_leaf(dst_leaf, src_leaf);
  ensure_size(t, topo_.paths_between_leaves(src_leaf, dst_leaf).size());
  if (data.conga_lbtag < t.entries.size()) {
    t.entries[data.conga_lbtag] = Entry{data.conga_ce, simulator_.now(), true};
  }
}

void CongaLb::decorate_ack(const net::Packet& data, net::Packet& ack) {
  const int src_leaf = topo_.leaf_of(data.src);
  const int dst_leaf = topo_.leaf_of(data.dst);
  if (src_leaf == dst_leaf) return;
  PairTable& t = from_leaf(dst_leaf, src_leaf);
  if (t.entries.empty()) return;
  // One (lbtag, metric) pair per reverse packet, cycling over known
  // paths. Entries that have not been refreshed by forward traffic
  // within the aging window are not fed back: re-sending them would
  // reset their timestamp at the source and defeat aging. This is what
  // leaves the source blind to the alternative path in Example 4.
  for (std::size_t tries = 0; tries < t.entries.size(); ++tries) {
    const std::size_t i = t.fb_cursor;
    t.fb_cursor = (t.fb_cursor + 1) % t.entries.size();
    if (t.entries[i].valid &&
        simulator_.now() - t.entries[i].last <= config_.metric_aging) {
      ack.conga_fb_valid = true;
      ack.conga_fb_lbtag = static_cast<std::uint8_t>(i);
      ack.conga_fb_metric = t.entries[i].metric;
      return;
    }
  }
}

void CongaLb::on_ack(FlowCtx& flow, const net::Packet& ack) {
  if (!ack.conga_fb_valid || flow.intra_rack()) return;
  PairTable& t = to_leaf(flow.src_leaf, flow.dst_leaf);
  ensure_size(t, topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf).size());
  if (ack.conga_fb_lbtag < t.entries.size()) {
    t.entries[ack.conga_fb_lbtag] = Entry{ack.conga_fb_metric, simulator_.now(), true};
  }
}

}  // namespace hermes::lb
