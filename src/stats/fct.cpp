#include "hermes/stats/fct.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hermes::stats {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

FctSummary FctCollector::summarize(std::uint64_t min_size, std::uint64_t max_size,
                                   bool include_unfinished) const {
  std::vector<double> fcts;
  fcts.reserve(records_.size());
  for (const auto& r : records_) {
    if (!r.finished && !include_unfinished) continue;
    if (r.size < min_size || r.size >= max_size) continue;
    fcts.push_back(r.fct().to_usec());
  }
  FctSummary s;
  s.count = fcts.size();
  if (fcts.empty()) return s;
  double sum = 0;
  for (double v : fcts) sum += v;
  s.mean_us = sum / static_cast<double>(fcts.size());
  s.p50_us = percentile(fcts, 50);
  s.p95_us = percentile(fcts, 95);
  s.p99_us = percentile(fcts, 99);
  s.max_us = *std::max_element(fcts.begin(), fcts.end());
  return s;
}

std::size_t FctCollector::unfinished_flows() const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (!r.finished) ++n;
  return n;
}

double FctCollector::unfinished_fraction() const {
  return records_.empty()
             ? 0.0
             : static_cast<double>(unfinished_flows()) / static_cast<double>(records_.size());
}

std::uint64_t FctCollector::total_timeouts() const {
  std::uint64_t n = 0;
  for (const auto& r : records_) n += r.timeouts;
  return n;
}

std::uint64_t FctCollector::total_retransmissions() const {
  std::uint64_t n = 0;
  for (const auto& r : records_) n += r.packets_retransmitted;
  return n;
}

std::uint64_t FctCollector::total_reroutes() const {
  std::uint64_t n = 0;
  for (const auto& r : records_) n += r.reroutes;
  return n;
}

}  // namespace hermes::stats
