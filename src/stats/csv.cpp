#include "hermes/stats/csv.hpp"

#include <cstddef>
#include <cstdio>
#include <string>

namespace hermes::stats {

namespace {
void append_row(std::string& out, const transport::FlowRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%llu,%llu,%.3f,%.3f,%d,%u,%u,%llu,%llu,%u\n",
                static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.size), r.start.to_usec(),
                r.fct().to_usec(), r.finished ? 1 : 0, r.timeouts, r.fast_retransmits,
                static_cast<unsigned long long>(r.packets_sent),
                static_cast<unsigned long long>(r.packets_retransmitted), r.reroutes);
  out += buf;
}
}  // namespace

std::string to_csv(const FctCollector& fct) {
  std::string out =
      "id,size_bytes,start_us,fct_us,finished,timeouts,fast_retx,pkts_sent,pkts_retx,"
      "reroutes\n";
  for (const auto& r : fct.records()) append_row(out, r);
  return out;
}

std::string summary_csv_header() { return "label,count,mean_us,p50_us,p95_us,p99_us,max_us\n"; }

std::string summary_csv_row(const std::string& label, const FctSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s,%zu,%.3f,%.3f,%.3f,%.3f,%.3f\n", label.c_str(), s.count,
                s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us);
  return buf;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace hermes::stats
