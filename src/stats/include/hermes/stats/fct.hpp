#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hermes/sim/time.hpp"
#include "hermes/transport/flow.hpp"

namespace hermes::stats {

/// Summary statistics of a set of flow completion times.
struct FctSummary {
  std::size_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// Collects FlowRecords and produces the FCT breakdowns the paper reports:
/// overall, small flows (<100KB) and large flows (>10MB), plus the
/// unfinished-flow fraction that drives the blackhole experiment (Fig. 17).
class FctCollector {
 public:
  static constexpr std::uint64_t kSmallLimit = 100 * 1000;       // <100KB
  static constexpr std::uint64_t kLargeLimit = 10 * 1000 * 1000;  // >10MB

  void add(const transport::FlowRecord& r) { records_.push_back(r); }
  /// Record a flow that did not finish before the simulation time cap;
  /// its "FCT so far" is cap - start (the paper's failure experiments
  /// count unfinished flows this way — they dominate the averages).
  void add_unfinished(std::uint64_t size, sim::SimTime start, sim::SimTime cap) {
    transport::FlowRecord r;
    r.size = size;
    r.start = start;
    r.end = cap;
    r.finished = false;
    records_.push_back(r);
  }

  [[nodiscard]] FctSummary overall() const { return summarize(0, UINT64_MAX); }
  [[nodiscard]] FctSummary small_flows() const { return summarize(0, kSmallLimit); }
  [[nodiscard]] FctSummary large_flows() const { return summarize(kLargeLimit, UINT64_MAX); }
  /// Flows with min_size <= size < max_size (custom bins). When
  /// `include_unfinished` is set, flows that never finished contribute
  /// their time-in-system at the cap.
  [[nodiscard]] FctSummary summarize(std::uint64_t min_size, std::uint64_t max_size,
                                     bool include_unfinished = false) const;
  [[nodiscard]] FctSummary overall_with_unfinished() const {
    return summarize(0, UINT64_MAX, true);
  }

  [[nodiscard]] std::size_t total_flows() const { return records_.size(); }
  [[nodiscard]] std::size_t unfinished_flows() const;
  [[nodiscard]] double unfinished_fraction() const;
  [[nodiscard]] std::uint64_t total_timeouts() const;
  [[nodiscard]] std::uint64_t total_retransmissions() const;
  [[nodiscard]] std::uint64_t total_reroutes() const;
  [[nodiscard]] const std::vector<transport::FlowRecord>& records() const { return records_; }

 private:
  std::vector<transport::FlowRecord> records_;
};

/// Percentile of a sample vector (nearest-rank on a sorted copy).
[[nodiscard]] double percentile(std::vector<double> values, double p);

}  // namespace hermes::stats
