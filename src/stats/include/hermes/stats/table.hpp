#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hermes::stats {

/// Minimal fixed-width console table used by the benchmark harness to
/// print paper-style result rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void print(std::FILE* out = stdout) const;

  /// Format helpers.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string usec(double v);
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hermes::stats
