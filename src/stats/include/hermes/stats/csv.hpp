#pragma once

#include <string>

#include "hermes/stats/fct.hpp"

namespace hermes::stats {

/// CSV rendering of flow records and summaries, for piping experiment
/// output into plotting tools.
///
/// Columns of the per-flow table:
///   id,size_bytes,start_us,fct_us,finished,timeouts,fast_retx,
///   pkts_sent,pkts_retx,reroutes
[[nodiscard]] std::string to_csv(const FctCollector& fct);

/// One summary row: label,count,mean_us,p50_us,p95_us,p99_us,max_us
[[nodiscard]] std::string summary_csv_header();
[[nodiscard]] std::string summary_csv_row(const std::string& label, const FctSummary& s);

/// Write `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace hermes::stats
