#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hermes/lb/load_balancer.hpp"

namespace hermes::stats {

/// Transparent LoadBalancer decorator that records where traffic actually
/// went: per-path packet/byte counts, per-flow path histograms, and every
/// mid-flow path change with its timestamp. Install it through
/// ScenarioConfig::wrap_balancer to analyze any scheme's behaviour (e.g.
/// how much traffic a scheme keeps sending through a failed spine).
class PathUsageRecorder final : public lb::LoadBalancer {
 public:
  struct PathCounters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  struct Reroute {
    std::uint64_t flow_id = 0;
    int from_path = -1;
    int to_path = -1;
  };

  explicit PathUsageRecorder(std::unique_ptr<lb::LoadBalancer> inner)
      : inner_{std::move(inner)} {}

  int select_path(lb::FlowCtx& flow, const net::Packet& pkt) override {
    const int before = flow.current_path;
    const int path = inner_->select_path(flow, pkt);
    auto& c = per_path_[path];
    ++c.packets;
    c.bytes += pkt.size;
    ++per_flow_[flow.flow_id][path];
    if (flow.has_sent && path != before) {
      reroutes_.push_back({flow.flow_id, before, path});
    }
    return path;
  }

  void on_ack(lb::FlowCtx& f, const net::Packet& a) override { inner_->on_ack(f, a); }
  void on_data_arrival(const net::Packet& d) override { inner_->on_data_arrival(d); }
  void decorate_ack(const net::Packet& d, net::Packet& a) override {
    inner_->decorate_ack(d, a);
  }
  void on_timeout(lb::FlowCtx& f) override { inner_->on_timeout(f); }
  void on_retransmit(lb::FlowCtx& f, int p) override { inner_->on_retransmit(f, p); }
  void on_flow_complete(lb::FlowCtx& f) override { inner_->on_flow_complete(f); }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }

  /// Packets/bytes per global path id (-1 = intra-rack).
  [[nodiscard]] const std::map<int, PathCounters>& per_path() const { return per_path_; }
  /// Packets per path for one flow.
  [[nodiscard]] std::map<int, std::uint64_t> flow_histogram(std::uint64_t flow_id) const {
    auto it = per_flow_.find(flow_id);
    return it == per_flow_.end() ? std::map<int, std::uint64_t>{} : it->second;
  }
  /// Every observed mid-flow path change, in order.
  [[nodiscard]] const std::vector<Reroute>& reroutes() const { return reroutes_; }
  /// Fraction of fabric bytes that used `path_id`.
  [[nodiscard]] double byte_share(int path_id) const {
    double total = 0, mine = 0;
    for (const auto& [id, c] : per_path_) {
      if (id < 0) continue;
      total += static_cast<double>(c.bytes);
      if (id == path_id) mine = static_cast<double>(c.bytes);
    }
    return total > 0 ? mine / total : 0.0;
  }
  [[nodiscard]] lb::LoadBalancer& inner() { return *inner_; }

 private:
  std::unique_ptr<lb::LoadBalancer> inner_;
  std::map<int, PathCounters> per_path_;
  std::unordered_map<std::uint64_t, std::map<int, std::uint64_t>> per_flow_;
  std::vector<Reroute> reroutes_;
};

}  // namespace hermes::stats
