#include "hermes/stats/table.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace hermes::stats {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  auto line = [&](char fill) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::fputc('+', out);
      for (std::size_t k = 0; k < width[i] + 2; ++k) std::fputc(fill, out);
    }
    std::fputs("+\n", out);
  };
  auto row_out = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      std::fprintf(out, "| %-*s ", static_cast<int>(width[i]), c.c_str());
    }
    std::fputs("|\n", out);
  };

  line('-');
  row_out(headers_);
  line('=');
  for (const auto& r : rows_) row_out(r);
  line('-');
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::usec(double v) {
  char buf[64];
  if (v >= 100000) {
    std::snprintf(buf, sizeof buf, "%.2fms", v / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fus", v);
  }
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace hermes::stats
